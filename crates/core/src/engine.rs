//! The TD-Pipe engine: temporally-disaggregated phase scheduling over the
//! pipeline simulator.
//!
//! One run alternates long prefill-only and decode-only phases:
//!
//! * **Prefill phase** — prompt batches are packed up to a token budget and
//!   streamed back-to-back into the pipeline (no inter-batch dependencies,
//!   so the pipe stays full). After every launched batch, Algorithm 1
//!   simulates the future KV usage and decides whether to keep going; see
//!   [`crate::greedy`].
//! * **Decode phase** — resident requests are partitioned into
//!   `num_stages` batches that chase each other through the pipeline; each
//!   time a batch returns, finished requests are retired, the KV cache is
//!   extended, the work stealer rebalances (see [`crate::steal`]), and the
//!   spatial-temporal comparison decides whether to switch back to prefill
//!   (see [`crate::intensity`]).
//!
//! The phase-switch bubble the paper talks about is not modelled — it
//! *emerges*: the first decode batches queue behind the last prefill jobs
//! at every stage, and the FIFO recurrence of
//! [`tdpipe_sim::PipelineSim`] produces exactly the idle gaps a real
//! pipeline would show.

use crate::batch::{partition_even_into, DecodeBatch};
use crate::cohort::{CohortMembers, DecodeCohort};
use crate::config::{D2pPolicy, P2dPolicy, PreemptionMode, TdPipeConfig};
use crate::control::ControlPlane;
use crate::cost::PpCost;
use crate::estimate::PrefillEstimateCache;
use crate::exec::{ExecError, PipelineExecutor, SimExecutor};
use crate::greedy::GreedyPrefillPlanner;
use crate::intensity::{IntensityComparator, PrefillPhaseEstimate};
use crate::metrics::EngineMetrics;
use crate::plan::MemoryPlan;
use crate::request::{Lifecycle, RequestPool};
use crate::steal::WorkStealer;
use std::collections::VecDeque;
use tdpipe_hw::{DecodeProfile, NodeSpec};
use tdpipe_kvcache::{BlockAllocator, OccupancyTrace, Phase, SessionRetainer};
use tdpipe_metrics::MetricsSnapshot;
use tdpipe_model::ModelSpec;
use tdpipe_predictor::OutputLenPredictor;
use tdpipe_sim::{RunReport, SegmentKind, Timeline};
use tdpipe_trace::{AdmitReason, EvictMode, FlightRecorder, PrefillStopReason, TraceEvent};
use tdpipe_workload::{SessionTrace, SessionTurn, Trace};

/// A model/node combination whose weights do not fit the devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfeasibleConfig {
    /// Human-readable description of the failing combination.
    pub reason: String,
}

impl std::fmt::Display for InfeasibleConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "infeasible configuration: {}", self.reason)
    }
}

impl std::error::Error for InfeasibleConfig {}

/// Summary of one engine phase (for diagnostics and Fig. 12 analysis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseRecord {
    /// Prefill or decode.
    pub phase: Phase,
    /// Engine time the phase began.
    pub start: f64,
    /// Engine time the phase ended.
    pub end: f64,
    /// Prefill: requests admitted. Decode: batch-steps executed.
    pub work_items: u64,
    /// Requests finished during the phase.
    pub finished: usize,
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Aggregate metrics (throughput, utilization, switches, …).
    pub report: RunReport,
    /// Per-device activity log (empty unless `record_timeline`).
    pub timeline: Timeline,
    /// KV occupancy over time (paper Fig. 12; empty unless
    /// `record_occupancy`, which defaults on).
    pub occupancy: OccupancyTrace,
    /// Chronological phase log.
    pub phases: Vec<PhaseRecord>,
    /// Scheduling decision journal (disabled unless `record_trace`).
    pub journal: FlightRecorder,
    /// Metrics-plane snapshot (empty unless `record_metrics`).
    pub metrics: MetricsSnapshot,
}

/// Closed-loop session state threaded through one engine run (only for
/// [`TdPipeEngine::run_sessions`]; `None` keeps every other entry point
/// bit-identical).
struct SessionRun<'a> {
    /// Per-request turn linkage, parallel to the request pool.
    turns: &'a [SessionTurn],
    /// The idle-prefix retention pool (budget already sized; zero budget
    /// when reuse is disabled, so `retain` always refuses).
    retainer: SessionRetainer,
    /// Whether finished turns retain KV at all
    /// ([`crate::config::EngineConfig::session_reuse`]).
    reuse: bool,
    /// Paged block size, for block math on retained allocations.
    block_size: u64,
    /// Resumed turns admitted with no retained prefix (full prefill).
    reuse_misses: u64,
}

/// Drop idle retained session prefixes (oldest first, never the one
/// reserved for `keep`) until the allocator has `target` free blocks or
/// the retention pool runs dry. Returns whether the target was met.
/// Dropping revokes the dropped successors' prefill discounts, which
/// changes pending prefill costs — hence the estimate-cache invalidation.
fn reclaim_retained(
    sess: &mut SessionRun<'_>,
    target: u64,
    keep: Option<u64>,
    now: f64,
    alloc: &mut BlockAllocator,
    pool: &mut RequestPool,
    est_cache: &mut PrefillEstimateCache,
    journal: &mut FlightRecorder,
) -> bool {
    while alloc.free_blocks() < target {
        let Some((succ, e)) = sess.retainer.pop_oldest_except(keep) else {
            return false;
        };
        // analyzer: allow(no-expect) — a retained entry's donor keeps its
        // allocator slot live until the entry is claimed or dropped here.
        alloc.free(e.donor).expect("retained donor resident");
        pool.clear_reuse_discount(succ as usize);
        journal.record(
            now,
            TraceEvent::SessionDrop {
                request: succ,
                tokens: e.tokens,
            },
        );
        est_cache.invalidate();
    }
    true
}

/// Retire a finished request's KV: retain it for the session successor
/// when reuse is on and the budget allows (evicting older retained
/// prefixes first), free it otherwise; then release the successor's
/// closed-loop arrival (finish + think time), moving it from the pending
/// queue's unreleased tail to its sorted slot. Returns the tokens `m`
/// held (its contribution to the departing batch's context), exactly as
/// `alloc.free` would have reported.
#[allow(clippy::too_many_arguments)]
fn release_finished(
    m: usize,
    now: f64,
    sess: &mut Option<SessionRun<'_>>,
    pool: &mut RequestPool,
    alloc: &mut BlockAllocator,
    pending: &mut VecDeque<usize>,
    est_cache: &mut PrefillEstimateCache,
    journal: &mut FlightRecorder,
) -> u64 {
    // The lifecycle terminator: with arrival and first-token stamps
    // copied in, a journal alone reconstructs every latency component
    // (the span layer never needs the request pool).
    journal.record(
        now,
        TraceEvent::RequestFinish {
            request: pool.id(m).0,
            arrival: pool.arrival(m),
            first_token: pool.first_token_at(m),
        },
    );
    let Some(s) = sess.as_mut() else {
        // analyzer: allow(no-expect) — every batch member was allocated at
        // admission and eviction removes it from its batch, so a finisher
        // is resident.
        return alloc.free(m as u64).expect("finished request resident");
    };
    let next = s.turns[m].next;
    // analyzer: allow(no-expect) — finishers are resident (see above).
    let held = alloc.tokens_of(m as u64).expect("finished request resident");
    let mut retained = false;
    if s.reuse {
        if let Some(succ) = next {
            let blocks = held.div_ceil(s.block_size);
            // Make room in the retention budget oldest-first; a budget too
            // small for this prefix leaves `fits` false and we fall back
            // to freeing.
            while !s.retainer.fits(blocks) {
                let Some((other, e)) = s.retainer.pop_oldest() else {
                    break;
                };
                // analyzer: allow(no-expect) — retained donors stay
                // resident until claimed or dropped here.
                alloc.free(e.donor).expect("retained donor resident");
                pool.clear_reuse_discount(other as usize);
                journal.record(
                    now,
                    TraceEvent::SessionDrop {
                        request: other,
                        tokens: e.tokens,
                    },
                );
            }
            if s.retainer.retain(succ as u64, m as u64, held, blocks) {
                // The successor will prefill only its fresh suffix while
                // the prefix survives. `held` is the prior transcript
                // minus the final sampled token, so it is strictly below
                // the successor's prompt length.
                pool.set_reuse_discount(succ as usize, held as u32);
                journal.record(
                    now,
                    TraceEvent::SessionRetain {
                        request: succ as u64,
                        tokens: held,
                    },
                );
                retained = true;
            }
        }
    }
    if !retained {
        // analyzer: allow(no-expect) — still resident: nothing freed it.
        alloc.free(m as u64).expect("finished request resident");
    }
    if let Some(succ) = next {
        let succ = succ as usize;
        let at = now + s.turns[succ].think_s;
        pool.set_arrival(succ, at);
        // The successor has never arrived (infinite arrival), so it still
        // sits in the pending queue's unreleased tail — scan from the
        // back, where it lives.
        let p = pending
            .iter()
            .rposition(|&i| i == succ)
            // analyzer: allow(no-expect) — unreleased turns are never
            // admitted (their arrival is infinite), so the successor
            // must be pending.
            .expect("unreleased turn pending");
        pending.remove(p);
        // Sorted re-insertion among released-but-future arrivals. The
        // walk stops before the arrived head region (arrivals <= now <=
        // at), so the eviction-ordered head layout is preserved.
        let mut pos = pending.len();
        while pos > 0 && pool.arrival(pending[pos - 1]) > at {
            pos -= 1;
        }
        pending.insert(pos, succ);
        est_cache.invalidate();
    }
    held
}

/// The TD-Pipe inference engine for one `(model, node)` configuration.
#[derive(Debug, Clone)]
pub struct TdPipeEngine {
    cfg: TdPipeConfig,
    cost: PpCost,
    plan: MemoryPlan,
}

impl TdPipeEngine {
    /// Plan an engine; fails when some pipeline stage cannot hold its
    /// weights plus at least one KV block.
    pub fn new(
        model: ModelSpec,
        node: &NodeSpec,
        cfg: TdPipeConfig,
    ) -> Result<Self, InfeasibleConfig> {
        let partition = if cfg.lm_head_aware_partition {
            PpCost::lm_head_aware_partition(&model, node, 256)
        } else {
            tdpipe_model::PipelinePartition::balanced(&model, node.num_gpus)
        };
        let plan = MemoryPlan::pipeline_with(
            &model,
            node,
            &partition,
            cfg.engine.block_size,
            cfg.engine.mem_reserve_bytes,
        )
        .ok_or_else(|| InfeasibleConfig {
            reason: format!(
                "{} does not fit {}x{} pipeline stages",
                model.name, node.num_gpus, node.gpu.name
            ),
        })?;
        let cost = PpCost::with_partition(model, node, partition);
        Ok(TdPipeEngine { cfg, cost, plan })
    }

    /// The planned KV pool.
    pub fn plan(&self) -> &MemoryPlan {
        &self.plan
    }

    /// The cost model in use.
    pub fn cost(&self) -> &PpCost {
        &self.cost
    }

    /// Build the offline decode profile for the spatial-intensity lookup,
    /// using the trace's average context length as the representative
    /// profiling context (the paper profiles offline the same way).
    fn build_profile(&self, trace: &Trace) -> DecodeProfile {
        let n = trace.len().max(1) as u64;
        let avg_ctx = ((trace.total_input_tokens() + trace.total_output_tokens() / 2) / n).max(16);
        let avg_total =
            ((trace.total_input_tokens() + trace.total_output_tokens()) / n).max(16);
        // "Peak" is the per-request rate at a sufficiently large batch
        // (§3.5). The largest batch this configuration can actually field
        // is a full memory's worth of requests divided over the
        // `num_stages` in-flight decode batches — profile up to that point
        // so spatial intensity is 1.0 right after a full prefill phase and
        // decays as requests retire.
        let max_batch = (self.plan.token_capacity()
            / avg_total
            / self.cost.num_stages() as u64)
            .clamp(8, 4096) as usize;
        DecodeProfile::build(max_batch, |b| {
            self.cost.decode_job(b, b as u64 * avg_ctx).latency()
        })
    }

    /// Run the engine over a trace, consulting `predictor` for output
    /// lengths (pass [`tdpipe_predictor::OraclePredictor`] for the
    /// perfect-information ablation).
    ///
    /// # Panics
    /// Panics if some request cannot fit in KV memory even alone.
    pub fn run<P: OutputLenPredictor + ?Sized>(&self, trace: &Trace, predictor: &P) -> RunOutcome {
        self.run_with_arrivals(trace, &[], predictor)
    }

    /// Run with per-request arrival times (the online extension; an empty
    /// slice means everything is queued at t = 0, the paper's setting).
    /// Arrival times must be non-decreasing and aligned with the trace;
    /// latency metrics come out arrival-relative.
    ///
    /// # Panics
    /// Panics if some request cannot fit in KV memory even alone, or if
    /// `arrivals` is non-empty but misaligned/unsorted.
    pub fn run_with_arrivals<P: OutputLenPredictor + ?Sized>(
        &self,
        trace: &Trace,
        arrivals: &[f64],
        predictor: &P,
    ) -> RunOutcome {
        let e = &self.cfg.engine;
        let executor = Box::new(SimExecutor::new(
            self.cost.num_stages(),
            e.transfer_mode,
            e.record_timeline,
        ));
        self.run_on(trace, arrivals, predictor, executor)
    }

    /// Run the engine against an arbitrary execution plane — the
    /// deterministic simulator ([`SimExecutor`]) or the threaded
    /// hierarchy-controller (`tdpipe-runtime`'s executor). This is the
    /// single scheduling loop: only the execution substrate varies.
    ///
    /// # Panics
    /// As [`Self::run_with_arrivals`], plus on an execution-plane
    /// failure — use [`Self::try_run_on`] to observe those as structured
    /// errors instead.
    pub fn run_on<P: OutputLenPredictor + ?Sized>(
        &self,
        trace: &Trace,
        arrivals: &[f64],
        predictor: &P,
        sim: Box<dyn PipelineExecutor>,
    ) -> RunOutcome {
        // analyzer: allow(no-panic) — the infallible convenience surface:
        // its documented contract is to panic with the execution-plane
        // root cause; fallible callers use `try_run_on`.
        self.try_run_on(trace, arrivals, predictor, sim).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run a closed-loop multi-turn session workload: each resumed turn
    /// arrives only after its predecessor finishes plus think time, and —
    /// with [`crate::config::EngineConfig::session_reuse`] on — a resumed
    /// turn whose retained session KV survived prefills only its fresh
    /// suffix. Latencies are measured from each turn's *released* arrival.
    ///
    /// # Panics
    /// As [`Self::run_with_arrivals`], plus on an execution-plane failure
    /// and on a session trace failing its structural invariants.
    pub fn run_sessions<P: OutputLenPredictor + ?Sized>(
        &self,
        sessions: &SessionTrace,
        predictor: &P,
    ) -> RunOutcome {
        let e = &self.cfg.engine;
        let executor = Box::new(SimExecutor::new(
            self.cost.num_stages(),
            e.transfer_mode,
            e.record_timeline,
        ));
        let arrivals = sessions.initial_arrivals();
        self.run_impl(&sessions.trace, &arrivals, predictor, executor, Some(sessions))
            // analyzer: allow(no-panic) — the infallible convenience
            // surface, like `run_on`: panics with the execution-plane
            // root cause.
            .unwrap_or_else(|err| panic!("{err}"))
    }

    /// Fallible [`Self::run_on`]: an execution-plane failure (worker
    /// panic, lost stage message, wedged shutdown) surfaces as a clean
    /// [`ExecError`] instead of a panic or a hang — the waits inside a
    /// supervised plane (`tdpipe-runtime`) are all deadline-bounded.
    ///
    /// # Panics
    /// As [`Self::run_with_arrivals`] (scheduling preconditions only).
    pub fn try_run_on<P: OutputLenPredictor + ?Sized>(
        &self,
        trace: &Trace,
        arrivals: &[f64],
        predictor: &P,
        sim: Box<dyn PipelineExecutor>,
    ) -> Result<RunOutcome, ExecError> {
        self.run_impl(trace, arrivals, predictor, sim, None)
    }

    /// The single scheduling loop behind every entry point; `sessions`
    /// threads the closed-loop linkage (arrival release, KV retention)
    /// through it, and `None` leaves all of that behind one branch so
    /// non-session runs stay bit-identical.
    fn run_impl<P: OutputLenPredictor + ?Sized>(
        &self,
        trace: &Trace,
        arrivals: &[f64],
        predictor: &P,
        mut sim: Box<dyn PipelineExecutor>,
        sessions: Option<&SessionTrace>,
    ) -> Result<RunOutcome, ExecError> {
        assert!(
            arrivals.is_empty() || arrivals.len() == trace.len(),
            "one arrival per request"
        );
        assert!(
            arrivals.windows(2).all(|w| w[1] >= w[0]),
            "arrivals must be sorted"
        );
        let n_stages = self.cost.num_stages() as usize;
        let e = &self.cfg.engine;
        let mut pool =
            RequestPool::with_arrivals(trace.requests(), arrivals, |r| predictor.predict(r));
        let mut alloc = BlockAllocator::new(self.plan.kv_blocks, self.plan.block_size);
        alloc.reserve_ids(pool.len());
        // Closed-loop session state: the retention pool gets the
        // configured fraction of KV blocks (zero when reuse is off, so
        // every finished turn frees normally).
        let mut sess: Option<SessionRun<'_>> = sessions.map(|st| {
            assert_eq!(st.len(), trace.len(), "session turn table matches trace");
            st.check_invariants();
            let frac = e.session_retain_frac.clamp(0.0, 1.0);
            // analyzer: allow(lossy-float-cast) — retain_frac is clamped
            // to [0,1] and kv_blocks ≤ 2^32, so the product is exact
            // enough and stays well inside u64.
            let budget = (self.plan.kv_blocks as f64 * frac) as u64;
            let mut retainer =
                SessionRetainer::new(if e.session_reuse { budget } else { 0 });
            retainer.reserve_ids(st.len());
            SessionRun {
                turns: &st.turns,
                retainer,
                reuse: e.session_reuse,
                block_size: self.plan.block_size as u64,
                reuse_misses: 0,
            }
        });
        let mut occupancy = OccupancyTrace::new();
        // The flight recorder (ISSUE 4): disabled is a single-branch no-op
        // per `record` call, so default runs stay bit-identical. Sized for
        // one admit + stop per request plus slack for phase machinery.
        let mut journal = if e.record_trace {
            // Admit + stop + launch + done + finish per request, plus
            // slack for phase machinery and recompute episodes.
            FlightRecorder::with_capacity(pool.len() * 8 + 64)
        } else {
            FlightRecorder::disabled()
        };
        // The metrics plane (ISSUE 5): same gating discipline as the
        // recorder — disabled is a single-branch no-op per update.
        let mut metrics = EngineMetrics::new(e.record_metrics);
        let comparator = IntensityComparator::new(self.build_profile(trace));
        let mut planner =
            GreedyPrefillPlanner::new(self.cfg.future_points(), self.plan.token_capacity());
        planner.reserve_ids(pool.len());

        let mut ctrl = ControlPlane::new(e);
        let mut pending: VecDeque<usize> = (0..pool.len()).collect();
        // Admission order drives batch partitioning and eviction priority.
        let mut admission_seq: Vec<u64> = vec![0; pool.len()];
        let mut next_seq: u64 = 0;
        let mut residents: Vec<usize> = Vec::new();

        // Charge the (tiny) predictor cost up front, like the paper's
        // §4.4.1 accounting.
        let mut now = pool.len() as f64 * predictor.per_request_overhead();
        let mut phase_switches: u32 = 0;
        // analyzer: allow(lossy-float-cast) — watermark ∈ [0,1] and
        // kv_blocks ≤ 2^32, so the ceil stays well inside u64 and the
        // round-up direction is the conservative one for admission.
        let watermark_blocks = (self.plan.kv_blocks as f64 * e.watermark).ceil() as u64;

        let mut phases: Vec<PhaseRecord> = Vec::new();
        // Prefill completions are consumed lazily (the executor reports in
        // launch order); each entry indexes a member range in
        // `prefill_members` plus the occupancy at launch.
        const PREFILL_TAG: u64 = 1 << 32;
        let mut prefill_seq: u64 = 0;
        // Hot-loop scratch, reused across phases: the steady-state engine
        // loop allocates nothing per prefill batch or decode step.
        let mut batch: Vec<usize> = Vec::new();
        let mut seq_lens: Vec<u32> = Vec::new();
        let mut prefill_members: Vec<usize> = Vec::new();
        let mut prefill_meta: Vec<(usize, usize, f64)> = Vec::new();
        let mut est_cache = PrefillEstimateCache::default();
        let mut job = crate::cost::StagedJob::default();
        let mut evict_heap: std::collections::BinaryHeap<(u64, usize)> =
            std::collections::BinaryHeap::new();
        let mut evicted: Vec<bool> = Vec::new();
        // Running per-batch context totals (`DecodeBatch::total_ctx`
        // maintained incrementally) and their sum over stored batches.
        let mut batch_ctx: Vec<u64> = vec![0; n_stages];
        let mut inflight: VecDeque<usize> = VecDeque::new();
        // Per-switch scratch, reused so the steady-state engine allocates
        // nothing at a phase transition: the decode batches (member vectors
        // keep their capacity), their initial sizes, and the work stealer.
        let mut batches: Vec<DecodeBatch> = Vec::new();
        let mut initial_sizes: Vec<usize> = Vec::new();
        let mut stealer: Option<WorkStealer> = None;
        // Event-driven decode cohorts, one per in-flight batch, plus their
        // shared per-request bookkeeping: each banks its batch's per-step
        // work (tokens generated, KV extends, finish retirement, planner
        // advances) as arithmetic, settled per member only when a member
        // leaves its batch — see `crate::cohort`.
        let mut cohorts: Vec<DecodeCohort> = (0..n_stages)
            .map(|_| DecodeCohort::new(self.plan.block_size))
            .collect();
        let mut cm = CohortMembers::new(pool.len());
        let mut finishers: Vec<(usize, u32)> = Vec::new();
        while !pool.all_finished() {
            // ===================== PREFILL PHASE =====================
            let phase_t0 = now;
            let mut admitted = 0u64;
            // The planner is maintained incrementally across phases
            // (admit/remove/advance); in debug builds, rebuild it from
            // scratch and check the usage grids agree exactly.
            #[cfg(debug_assertions)]
            {
                let mut oracle = GreedyPrefillPlanner::new(
                    self.cfg.future_points(),
                    self.plan.token_capacity(),
                );
                for &i in &residents {
                    oracle.admit(i, pool.resident_tokens(i), pool.predicted_remaining(i));
                }
                debug_assert_eq!(
                    oracle.usage(),
                    planner.usage(),
                    "incremental planner drifted from a from-scratch rebuild"
                );
            }
            let mut launched = 0u64;
            let mut admitted_any = false;
            prefill_members.clear();
            prefill_meta.clear();
            'prefill: while !pending.is_empty() {
                let stop = match self.cfg.p2d {
                    P2dPolicy::Greedy => planner.would_overflow(),
                    P2dPolicy::FixedOccupancy(r) => alloc.occupancy() >= r,
                };
                if stop && admitted_any {
                    journal.record(
                        now,
                        TraceEvent::PrefillStop {
                            reason: PrefillStopReason::Overflow,
                            admitted,
                        },
                    );
                    metrics.on_prefill_stop(PrefillStopReason::Overflow);
                    break;
                }
                // Pack the next prefill batch up to the token budget.
                batch.clear();
                seq_lens.clear();
                let mut batch_tokens: u32 = 0;
                // Why the packing loop below halted (journal; the loop
                // running the queue dry leaves the default).
                let mut pack_stop = PrefillStopReason::Exhausted;
                while let Some(&idx) = pending.front() {
                    // Online extension: a request can only be prefilled
                    // after it has arrived.
                    if pool.arrival(idx) > now + launched as f64 * e.engine_overhead {
                        pack_stop = PrefillStopReason::Arrival;
                        break;
                    }
                    // Swap-preempted requests re-enter via a host-link
                    // transfer, not a prefill job.
                    if pool.swapped(idx) {
                        let tokens = pool.resident_tokens(idx);
                        let needed =
                            tokens.div_ceil(self.plan.block_size as u64);
                        if alloc.free_blocks() < needed + watermark_blocks {
                            // Idle retained session prefixes yield to live
                            // re-admissions before the packer gives up.
                            let met = match sess.as_mut() {
                                Some(s) => reclaim_retained(
                                    s,
                                    needed + watermark_blocks,
                                    None,
                                    now,
                                    &mut alloc,
                                    &mut pool,
                                    &mut est_cache,
                                    &mut journal,
                                ),
                                None => false,
                            };
                            if !met {
                                pack_stop = PrefillStopReason::Memory;
                                break;
                            }
                        }
                        // analyzer: allow(no-expect) — guarded two lines
                        // up: `free_blocks() >= needed + watermark` makes
                        // this allocation infallible.
                        alloc.allocate(idx as u64, tokens).expect("checked");
                        pending.pop_front();
                        pool.note_swap_in(idx, tokens);
                        now += tokens as f64
                            * self.cost.model().kv_bytes_per_token() as f64
                            / e.host_link_bw;
                        admission_seq[idx] = next_seq;
                        next_seq += 1;
                        residents.push(idx);
                        planner.admit(idx, tokens, pool.predicted_remaining(idx));
                        admitted_any = true;
                        admitted += 1;
                        journal.record(
                            now,
                            TraceEvent::PrefillAdmit {
                                request: pool.id(idx).0,
                                tokens,
                                reason: AdmitReason::SwapIn,
                            },
                        );
                        metrics.on_prefill_admit(AdmitReason::SwapIn, tokens);
                        continue;
                    }
                    // `t` is what the prefill must *compute* (fresh suffix
                    // only on a session reuse hit); `full` is what the
                    // request *occupies* once resident. Equal except on a
                    // hit, where the donor's retained blocks come back
                    // first, so they count toward the admission check.
                    let t = pool.prefill_tokens(idx);
                    if !batch.is_empty() && batch_tokens + t > e.prefill_token_budget {
                        pack_stop = PrefillStopReason::Budget;
                        break;
                    }
                    let full = pool.resident_tokens(idx);
                    let needed = full.div_ceil(self.plan.block_size as u64);
                    let donor_blocks = sess
                        .as_ref()
                        .and_then(|s| s.retainer.peek(idx as u64))
                        .map_or(0, |c| c.blocks);
                    let target = (needed + watermark_blocks).saturating_sub(donor_blocks);
                    if alloc.free_blocks() < target {
                        // Reclaim idle retained prefixes (never this
                        // request's own) before giving up on memory.
                        let met = match sess.as_mut() {
                            Some(s) => reclaim_retained(
                                s,
                                target,
                                Some(idx as u64),
                                now,
                                &mut alloc,
                                &mut pool,
                                &mut est_cache,
                                &mut journal,
                            ),
                            None => false,
                        };
                        if !met {
                            pack_stop = PrefillStopReason::Memory;
                            break; // memory admission stop
                        }
                    }
                    // Session accounting at the moment admission is
                    // certain: claim the retained prefix (hit) or record
                    // the miss for a first-time resumed turn.
                    if let Some(s) = sess.as_mut() {
                        if let Some(c) = s.retainer.claim(idx as u64) {
                            // analyzer: allow(no-expect) — retained donors
                            // stay resident until claimed here or dropped.
                            alloc.free(c.donor).expect("retained donor resident");
                            journal.record(
                                now,
                                TraceEvent::SessionReuseHit {
                                    request: pool.id(idx).0,
                                    tokens: c.tokens,
                                },
                            );
                        } else if s.turns[idx].prev.is_some() && pool.evictions(idx) == 0 {
                            s.reuse_misses += 1;
                            journal.record(
                                now,
                                TraceEvent::SessionReuseMiss {
                                    request: pool.id(idx).0,
                                },
                            );
                        }
                    }
                    // analyzer: allow(no-expect) — guarded above: the
                    // admission check reserved `needed + watermark`
                    // free blocks (counting the just-freed donor), so
                    // this allocation cannot fail.
                    alloc.allocate(idx as u64, full).expect("admission check guaranteed fit");
                    pending.pop_front();
                    batch.push(idx);
                    seq_lens.push(t);
                    batch_tokens += t;
                    if sess.is_some() {
                        // The discount was consumed by this admission; a
                        // later eviction re-prefills at full cost.
                        pool.clear_reuse_discount(idx);
                    }
                }
                if batch.is_empty() {
                    // Memory full, head not yet arrived, or a single
                    // request exceeds capacity.
                    // analyzer: allow(no-expect) — this branch is only
                    // reachable from the admission loop's `break`s, all
                    // of which require a non-empty pending queue.
                    let idx = *pending.front().expect("pending nonempty");
                    let head_arrived =
                        pool.arrival(idx) <= now + launched as f64 * e.engine_overhead;
                    if head_arrived && !admitted_any && residents.is_empty() {
                        // analyzer: allow(no-panic) — unschedulable input
                        // (one request larger than the whole KV pool):
                        // a precondition documented under `# Panics` on
                        // `run_with_arrivals`, not a runtime failure.
                        panic!(
                            "request {} ({} tokens) exceeds KV capacity ({} tokens)",
                            pool.id(idx),
                            pool.resident_tokens(idx),
                            self.plan.token_capacity()
                        );
                    }
                    // pack_stop is Arrival or Memory here: an empty batch
                    // means the packer broke on its very first candidate.
                    journal.record(
                        now,
                        TraceEvent::PrefillStop {
                            reason: pack_stop,
                            admitted,
                        },
                    );
                    metrics.on_prefill_stop(pack_stop);
                    break 'prefill;
                }
                admitted_any = true;
                self.cost.prefill_job_into(&seq_lens, &mut job);
                let ready = now + launched as f64 * e.engine_overhead;
                launched += 1;
                prefill_seq += 1;
                sim.launch(
                    ready,
                    &job.exec,
                    &job.xfer,
                    SegmentKind::Prefill,
                    PREFILL_TAG + prefill_seq,
                );
                // Span anchor: records the packing clock, carries the
                // executor-ready instant (the two differ by the serialised
                // launch overhead — the per-request prefill-wait span).
                journal.record(
                    now,
                    TraceEvent::PrefillLaunch {
                        seq: prefill_seq,
                        batch: batch.len(),
                        tokens: batch_tokens as u64,
                        ready,
                    },
                );
                metrics.on_prefill_batch(batch.len(), batch_tokens as u64);
                let start = prefill_members.len();
                prefill_members.extend_from_slice(&batch);
                prefill_meta.push((start, prefill_members.len(), alloc.occupancy()));
                for (&idx, &t) in batch.iter().zip(&seq_lens) {
                    pool.note_prefill(idx, t);
                    // The planner tracks *residency*, not prefill work:
                    // on a session reuse hit the two differ (`t` is the
                    // fresh suffix; the request occupies its full
                    // prompt). Identical to `t` on every other path.
                    planner.admit(idx, pool.resident_tokens(idx), pool.predicted_remaining(idx));
                    admission_seq[idx] = next_seq;
                    next_seq += 1;
                    residents.push(idx);
                    admitted += 1;
                    if journal.is_enabled() || metrics.is_enabled() {
                        let reason = if pool.evictions(idx) > 0 {
                            AdmitReason::Recompute
                        } else {
                            AdmitReason::FirstPrefill
                        };
                        journal.record(
                            now,
                            TraceEvent::PrefillAdmit {
                                request: pool.id(idx).0,
                                tokens: t as u64,
                                reason,
                            },
                        );
                        metrics.on_prefill_admit(reason, t as u64);
                    }
                }
                journal.record(
                    now,
                    TraceEvent::PrefillStop {
                        reason: pack_stop,
                        admitted,
                    },
                );
                metrics.on_prefill_stop(pack_stop);
            }
            // Collect this phase's prefill completions: first-token stamps
            // and Fig. 12 occupancy samples.
            let mut prefill_exec_end = now;
            // Completion stamps are monotone (the pipeline retires jobs in
            // launch order); `done_t` guards the journal's time order
            // against any float jitter in the completion times.
            let mut done_t = now;
            for &(start, end, occ) in prefill_meta.iter() {
                let (tag, finish) = sim.try_next_completion()?;
                debug_assert!(tag > PREFILL_TAG, "prefills complete before decodes");
                done_t = done_t.max(finish);
                for &idx in &prefill_members[start..end] {
                    pool.note_first_token(idx, finish);
                    journal.record(
                        done_t,
                        TraceEvent::PrefillDone {
                            request: pool.id(idx).0,
                        },
                    );
                }
                if e.record_occupancy {
                    occupancy.push(finish, occ, Phase::Prefill);
                }
                metrics.sample(finish, occ, 0, 0, pending.len());
                prefill_exec_end = prefill_exec_end.max(finish);
            }
            now += launched as f64 * e.engine_overhead;
            phase_switches += 1; // prefill → decode
            phases.push(PhaseRecord {
                phase: Phase::Prefill,
                start: phase_t0,
                end: prefill_exec_end,
                work_items: admitted,
                finished: 0,
            });
            let phase_t0 = prefill_exec_end;
            let mut decode_steps = 0u64;

            // ===================== DECODE PHASE ======================
            if residents.is_empty() {
                // Nothing runnable. With arrivals this legitimately means
                // the system is idle until the next request shows up:
                // fast-forward and try the prefill phase again.
                let next_arrival = pending
                    .iter()
                    .map(|&i| pool.arrival(i))
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    next_arrival.is_finite() && next_arrival > now,
                    "stuck: nothing resident, nothing arriving (pending={}, finished={}/{})",
                    pending.len(),
                    pool.finished(),
                    pool.len()
                );
                // Declared starvation: the bubble ledger attributes every
                // device's idleness over [now, next_arrival] to arrivals.
                journal.record(
                    now,
                    TraceEvent::ArrivalWait {
                        until: next_arrival,
                    },
                );
                now = next_arrival;
                phases.pop(); // drop the empty prefill phase record
                phase_switches -= 1;
                continue;
            }
            // Journalled after the empty-residents check so the idle
            // fast-forward path above produces no spurious switch events.
            journal.record(
                prefill_exec_end,
                TraceEvent::PhaseSwitch {
                    from: Phase::Prefill,
                    to: Phase::Decode,
                },
            );
            // Metrics-side phase close-out lives *after* the idle
            // fast-forward `continue` above, mirroring the journal: the
            // popped empty prefill record never reaches the registry.
            metrics.on_phase_end(Phase::Prefill, phases[phases.len() - 1].start, prefill_exec_end);
            // Partition in admission order (§3.4: equal batches, one per
            // GPU). `residents` is kept in admission order by construction —
            // prefill appends in increasing `admission_seq` and the
            // phase-end retain preserves order — so no per-switch sort.
            debug_assert!(
                residents
                    .windows(2)
                    .all(|w| admission_seq[w[0]] < admission_seq[w[1]]),
                "residents must stay in admission order"
            );
            partition_even_into(&residents, n_stages, &mut batches);
            initial_sizes.clear();
            initial_sizes.extend(batches.iter().map(DecodeBatch::len));
            let phase_start_count: usize = initial_sizes.iter().sum();
            if self.cfg.work_stealing {
                match stealer.as_mut() {
                    Some(st) => st.reset(&initial_sizes),
                    None => stealer = Some(WorkStealer::new(&initial_sizes)),
                }
            }
            est_cache.invalidate();
            let mut finished_this_phase = 0usize;
            let mut switching = false;

            debug_assert!(inflight.is_empty());
            for (bid, b) in batches.iter().enumerate() {
                // Scan each batch once at phase start; from here on
                // `batch_ctx` is maintained incrementally. Bank every
                // member into the batch's cohort: one join here replaces
                // the per-step per-member walk for its whole residency.
                batch_ctx[bid] = b.total_ctx(&pool);
                let coh = &mut cohorts[bid];
                coh.reset();
                for &m in &b.members {
                    coh.join(
                        &mut cm,
                        m,
                        pool.resident_tokens(m),
                        pool.output_len(m) - pool.generated(m),
                    );
                }
                if b.is_empty() {
                    continue;
                }
                self.cost.decode_job_into(b.len(), batch_ctx[bid], &mut job);
                let ready = now + inflight.len() as f64 * e.engine_overhead;
                sim.launch(ready, &job.exec, &job.xfer, SegmentKind::Decode, bid as u64);
                metrics.on_decode_step(b.len());
                inflight.push_back(bid);
            }
            // Context-token sum over the batches currently stored in
            // `batches` (the in-processing batch is subtracted while its
            // members are taken out, mirroring the old per-step rescan).
            let mut stored_ctx: u64 = batch_ctx.iter().sum();

            while let Some(bid) = inflight.pop_front() {
                let (tag, finish) = sim.try_next_completion()?;
                debug_assert_eq!(tag, bid as u64, "completions follow launch order");
                now = finish;
                decode_steps += 1;
                let mut members = std::mem::take(&mut batches[bid].members);
                stored_ctx -= batch_ctx[bid];
                // 1) One token generated per member; retire the finished.
                //    Every member's context grows by one this step; the
                //    finished leave with their post-step resident tokens
                //    (one more than the allocator held for them).
                // 2) Extend survivors' KV; evict newest-first on overflow
                //    (the recompute strategy of §4.1).
                //
                // The fast path banks the whole step in the batch's
                // cohort: finishers drain from their finish-epoch bucket
                // (with their banked state settled on the way out), the
                // survivors' growth is one aggregate extend, and no other
                // member is touched. When free memory cannot cover the
                // step's worst-case block demand, the cohort is settled
                // and the per-member loop replays the step with the
                // eviction machinery — identical semantics either way, so
                // the switch between paths cannot perturb the schedule.
                let mut ctx = batch_ctx[bid] + members.len() as u64;
                let mut finished_now = 0usize;
                let mut swap_out_delay = 0.0;
                if alloc.free_blocks() >= cohorts[bid].next_grows() as u64 {
                    let coh = &mut cohorts[bid];
                    coh.begin_step();
                    coh.drain_finishers(&mut cm, &mut finishers);
                    finished_now = finishers.len();
                    for &(m, extends) in &finishers {
                        alloc.advance_tokens(m as u64, extends as u64);
                        pool.finish_decode(m, extends + 1, now);
                        // Retain-for-successor or free, plus the
                        // closed-loop release (plain free on non-session
                        // runs).
                        let freed = release_finished(
                            m,
                            now,
                            &mut sess,
                            &mut pool,
                            &mut alloc,
                            &mut pending,
                            &mut est_cache,
                            &mut journal,
                        );
                        ctx -= freed + 1;
                        // `remove_request` subtracts the *tracked*
                        // contribution, so no settle is needed first.
                        planner.remove_request(m);
                    }
                    alloc.extend_cohort(coh.live() as u64, coh.step_grows() as u64);
                    if finished_now > 0 {
                        members.retain(|&m| pool.lifecycle(m) == Lifecycle::Decoding);
                    }
                    debug_assert_eq!(cohorts[bid].live(), members.len());
                } else {
                    // Materialise every member, then replay the step with
                    // the per-member loop. Overflow is rare, so the victim
                    // order is built lazily: a max-heap over
                    // `admission_seq` (unique, so the peel order matches
                    // the old per-victim max scan exactly) with lazy
                    // deletion — O(log n) per eviction instead of O(n).
                    for &m in &members {
                        let p = cohorts[bid].leave(&mut cm, m);
                        planner.advance(m, p);
                        pool.advance_decode_steps(m, p);
                        alloc.advance_tokens(m as u64, p as u64);
                    }
                    members.retain(|&idx| {
                        if pool.note_decode_step(idx, now) {
                            let freed = release_finished(
                                idx,
                                now,
                                &mut sess,
                                &mut pool,
                                &mut alloc,
                                &mut pending,
                                &mut est_cache,
                                &mut journal,
                            );
                            ctx -= freed + 1;
                            finished_now += 1;
                            planner.remove_request(idx);
                            false
                        } else {
                            true
                        }
                    });
                    let mut heap_built = false;
                    let mut i = 0;
                    while i < members.len() {
                        if heap_built && evicted[i] {
                            i += 1;
                            continue;
                        }
                        let idx = members[i];
                        if alloc.extend_one(idx as u64).is_ok() {
                            i += 1;
                            continue;
                        }
                        // Idle retained session prefixes yield before any
                        // live member is evicted.
                        if let Some(s) = sess.as_mut() {
                            if reclaim_retained(
                                s,
                                1,
                                None,
                                now,
                                &mut alloc,
                                &mut pool,
                                &mut est_cache,
                                &mut journal,
                            ) && alloc.extend_one(idx as u64).is_ok()
                            {
                                i += 1;
                                continue;
                            }
                        }
                        if !heap_built {
                            evicted.clear();
                            evicted.resize(members.len(), false);
                            evict_heap.clear();
                            evict_heap.extend(
                                members
                                    .iter()
                                    .enumerate()
                                    .map(|(p, &m)| (admission_seq[m], p)),
                            );
                            heap_built = true;
                        }
                        // Evict the newest member (possibly idx itself).
                        let pos = loop {
                            // analyzer: allow(no-expect) — the heap holds
                            // every live member and `idx` itself is live, so
                            // a victim always exists before exhaustion.
                            let (_, p) = evict_heap.pop().expect("live member to evict");
                            if !evicted[p] {
                                break p;
                            }
                        };
                        let victim = members[pos];
                        evicted[pos] = true;
                        // analyzer: allow(no-expect) — victims come from
                        // `members`, all of which hold live allocations.
                        alloc.free(victim as u64).expect("victim resident");
                        ctx -= pool.resident_tokens(victim);
                        planner.remove_request(victim);
                        let mode = match e.preemption {
                            PreemptionMode::Recompute => {
                                pool.note_eviction(victim);
                                EvictMode::Recompute
                            }
                            PreemptionMode::Swap => {
                                // The victim's KV streams to host memory; the
                                // batch cannot relaunch until its share of the
                                // link is free.
                                swap_out_delay += pool.resident_tokens(victim) as f64
                                    * self.cost.model().kv_bytes_per_token() as f64
                                    / e.host_link_bw;
                                pool.note_swap_out(victim);
                                EvictMode::Swap
                            }
                        };
                        journal.record(
                            now,
                            TraceEvent::Evict {
                                mode,
                                victim: pool.id(victim).0,
                            },
                        );
                        metrics.on_evict(mode);
                        pending.push_front(victim);
                        est_cache.invalidate();
                        // `idx` may have been the victim; the `evicted` check at
                        // the loop head re-routes, otherwise retry this slot.
                    }
                    if heap_built {
                        // Compact the survivors in order (one pass, instead
                        // of the old `Vec::remove` per victim).
                        let mut p = 0;
                        members.retain(|_| {
                            let keep = !evicted[p];
                            p += 1;
                            keep
                        });
                    }
                    // Credit the step each survivor just executed in full,
                    // then re-bank the batch as a fresh cohort.
                    let coh = &mut cohorts[bid];
                    coh.reset();
                    for &m in &members {
                        planner.advance(m, 1);
                        coh.join(
                            &mut cm,
                            m,
                            pool.resident_tokens(m),
                            pool.output_len(m) - pool.generated(m),
                        );
                    }
                }
                finished_this_phase += finished_now;
                now += swap_out_delay;
                // 3) Rebalance.
                if let Some(st) = stealer.as_mut() {
                    let epoch = cohorts[bid].epoch();
                    let moved = st.rebalance(&mut members, finished_now, &mut ctx, |m| {
                        // Banked members lag the pool by their banked
                        // steps; settled candidates (the withheld) read
                        // their pool state exactly.
                        pool.resident_tokens(m) + cm.pending(m, epoch) as u64
                    });
                    // Newly withheld members leave this batch's step
                    // cadence: settle their banked steps now. Supplements
                    // join it: bank them into this batch's cohort.
                    let wh = st.withheld();
                    for &m in &wh[wh.len() - moved.withheld..] {
                        let p = cohorts[bid].leave(&mut cm, m);
                        planner.advance(m, p);
                        pool.advance_decode_steps(m, p);
                        alloc.advance_tokens(m as u64, p as u64);
                    }
                    for &m in &members[members.len() - moved.supplemented..] {
                        cohorts[bid].join(
                            &mut cm,
                            m,
                            pool.resident_tokens(m),
                            pool.output_len(m) - pool.generated(m),
                        );
                    }
                    if moved.withheld > 0 {
                        journal.record(
                            now,
                            TraceEvent::StealWithhold {
                                n: moved.withheld,
                                target: moved.target,
                            },
                        );
                    }
                    if moved.supplemented > 0 {
                        journal.record(
                            now,
                            TraceEvent::StealSupplement {
                                n: moved.supplemented,
                                target: moved.target,
                            },
                        );
                    }
                    metrics.on_steal(moved.withheld, moved.supplemented);
                }
                if e.record_occupancy {
                    occupancy.push(now, alloc.occupancy(), Phase::Decode);
                }
                // 4) Decode→prefill decision.
                if !switching && !pending.is_empty() {
                    switching = match self.cfg.d2p {
                        D2pPolicy::Intensity => {
                            let live: usize =
                                members.len() + batches.iter().map(DecodeBatch::len).sum::<usize>();
                            let live_batches = inflight.len() + 1;
                            let mean_batch = (live / live_batches.max(1)).max(1);
                            // `stored_ctx` equals the old sum over stored
                            // batches (this batch's slot is empty here).
                            let mean_ctx = stored_ctx / live_batches.max(1) as u64;
                            self.cost
                                .decode_job_into(mean_batch, mean_ctx.max(1), &mut job);
                            let step = job.latency();
                            let est = est_cache.query(
                                &pending,
                                &pool,
                                &self.cost,
                                e.prefill_token_budget,
                                self.plan.token_capacity(),
                                alloc.free_blocks() * self.plan.block_size as u64,
                            );
                            // Debug cross-check: the memoized estimate must
                            // be bit-identical to the naive repack.
                            #[cfg(debug_assertions)]
                            {
                                let mut scratch = Vec::new();
                                let naive = self.estimate_prefill_phase(
                                    &pending,
                                    &pool,
                                    &alloc,
                                    &mut scratch,
                                );
                                debug_assert_eq!(
                                    est.longest_job.to_bits(),
                                    naive.longest_job.to_bits()
                                );
                                debug_assert_eq!(
                                    est.phase_len.to_bits(),
                                    naive.phase_len.to_bits()
                                );
                            }
                            let scores = comparator.decide(mean_batch, &est, step);
                            journal.record(
                                now,
                                TraceEvent::SwitchDecision {
                                    spatial: scores.spatial,
                                    temporal: scores.temporal,
                                    batch: mean_batch,
                                    est_longest: est.longest_job,
                                    est_phase_len: est.phase_len,
                                    switch: scores.switch,
                                },
                            );
                            metrics.on_switch_decision(scores.spatial, scores.temporal);
                            scores.switch
                        }
                        D2pPolicy::FixedFinishRatio(r) => {
                            finished_this_phase as f64 >= r * phase_start_count as f64
                        }
                    };
                }
                // 5) Relaunch or retire the batch. If this is the last live
                //    batch and the stealer still withholds requests, absorb
                //    them — otherwise they would strand with no batch left
                //    to supplement.
                batches[bid].members = members;
                if !switching && inflight.is_empty() {
                    if let Some(st) = stealer.as_mut() {
                        for &m in st.withheld() {
                            ctx += pool.resident_tokens(m);
                            // Absorbed members rejoin this batch's cadence
                            // (they were settled when withheld).
                            cohorts[bid].join(
                                &mut cm,
                                m,
                                pool.resident_tokens(m),
                                pool.output_len(m) - pool.generated(m),
                            );
                        }
                        st.take_withheld_into(&mut batches[bid].members);
                    }
                }
                batch_ctx[bid] = ctx;
                stored_ctx += ctx;
                if !switching && !batches[bid].is_empty() {
                    let b = &batches[bid];
                    self.cost.decode_job_into(b.len(), ctx, &mut job);
                    let ready = ctrl.process(now, b.len());
                    sim.launch(ready, &job.exec, &job.xfer, SegmentKind::Decode, bid as u64);
                    metrics.on_decode_step(b.len());
                    inflight.push_back(bid);
                }
            }

            // Settle the banked cohort state (pool tokens, KV residency,
            // planner advances) for members that ran to phase end — the
            // withheld were settled when they left their batch — then keep
            // the survivors: `residents` was never cleared, so retaining
            // the still-decoding entries preserves admission order for the
            // next partition.
            for (bid, b) in batches.iter().enumerate() {
                let coh = &mut cohorts[bid];
                for &m in &b.members {
                    let p = coh.leave(&mut cm, m);
                    planner.advance(m, p);
                    pool.advance_decode_steps(m, p);
                    alloc.advance_tokens(m as u64, p as u64);
                }
            }
            residents.retain(|&i| pool.lifecycle(i) == Lifecycle::Decoding);
            phases.push(PhaseRecord {
                phase: Phase::Decode,
                start: phase_t0,
                end: now,
                work_items: decode_steps,
                finished: finished_this_phase,
            });
            metrics.on_phase_end(Phase::Decode, phase_t0, now);
            if !pool.all_finished() {
                phase_switches += 1; // decode → prefill
                journal.record(
                    now,
                    TraceEvent::PhaseSwitch {
                        from: Phase::Decode,
                        to: Phase::Prefill,
                    },
                );
                assert!(
                    !pending.is_empty() || !residents.is_empty(),
                    "stuck: unfinished requests but nothing runnable"
                );
            }
        }

        pool.assert_conserved();
        let plane = sim.plane_stats();
        let (makespan, timeline) = sim.try_finish()?;
        // Device tracks for the Chrome export (only materialise when the
        // executor kept segments, i.e. `record_timeline` was on too).
        // Bounded: boundary idleness (pipeline warm-up before a device's
        // first segment, drain after its last) becomes explicit StageIdle
        // events, so attributed bubble seconds close against the makespan.
        journal.append_stage_events_bounded(&timeline, makespan);
        let report = RunReport {
            scheduler: "TD-Pipe".into(),
            makespan,
            num_requests: pool.len(),
            input_tokens: pool.input_tokens,
            output_tokens: pool.output_tokens,
            recomputed_tokens: pool.recomputed_tokens,
            swapped_tokens: pool.swapped_tokens,
            phase_switches,
            mean_utilization: timeline.mean_utilization(),
            latency: pool.latency_summary(),
        };
        if let Some(s) = &sess {
            debug_assert!(
                s.retainer.is_empty(),
                "all retained session prefixes should be claimed by run end"
            );
            metrics.on_session_summary(s.retainer.stats(), s.reuse_misses);
        }
        let metrics = metrics.finish(
            &report,
            alloc.stats(),
            self.plan.kv_blocks,
            &timeline,
            plane,
        );
        Ok(RunOutcome {
            report,
            timeline,
            occupancy,
            phases,
            journal,
            metrics,
        })
    }

    /// Price the hypothetical next prefill phase for the temporal-intensity
    /// estimate: pack pending requests (by their *predicted* total KV
    /// need) into the currently free capacity, batch them exactly like the
    /// real prefill packer, and report the longest job plus the phase
    /// length.
    ///
    /// The hot path uses the memoized [`PrefillEstimateCache`]; this naive
    /// walk is kept as the debug-build cross-check oracle.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    fn estimate_prefill_phase(
        &self,
        pending: &VecDeque<usize>,
        pool: &RequestPool,
        alloc: &BlockAllocator,
        scratch: &mut Vec<u32>,
    ) -> PrefillPhaseEstimate {
        let e = &self.cfg.engine;
        let mut free_tokens = alloc.free_blocks() * self.plan.block_size as u64;
        let mut longest = 0.0f64;
        let mut phase_len = 0.0f64;
        let seq_lens = scratch;
        seq_lens.clear();
        let mut batch_tokens: u32 = 0;
        let flush = |seq_lens: &mut Vec<u32>, longest: &mut f64, phase_len: &mut f64| {
            if seq_lens.is_empty() {
                return;
            }
            let job = self.cost.prefill_job(seq_lens);
            *longest = longest.max(job.latency());
            *phase_len += job.bottleneck();
            seq_lens.clear();
        };
        for &idx in pending {
            let t = pool.prefill_tokens(idx);
            let need = (t + pool.predicted_remaining(idx)) as u64;
            if need > free_tokens {
                break;
            }
            free_tokens -= need;
            if batch_tokens + t > e.prefill_token_budget && !seq_lens.is_empty() {
                flush(&mut *seq_lens, &mut longest, &mut phase_len);
                batch_tokens = 0;
            }
            seq_lens.push(t);
            batch_tokens += t;
        }
        flush(&mut *seq_lens, &mut longest, &mut phase_len);
        PrefillPhaseEstimate {
            longest_job: longest,
            phase_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdpipe_predictor::OraclePredictor;
    use tdpipe_workload::ShareGptLikeConfig;

    fn engine(num_gpus: u32) -> TdPipeEngine {
        TdPipeEngine::new(
            ModelSpec::llama2_13b(),
            &NodeSpec::l20(num_gpus),
            TdPipeConfig::default(),
        )
        .unwrap()
    }

    fn trace(n: usize) -> Trace {
        ShareGptLikeConfig::small(n, 42).generate()
    }

    #[test]
    fn small_run_completes_and_conserves() {
        let out = engine(4).run(&trace(64), &OraclePredictor);
        let r = &out.report;
        assert_eq!(r.num_requests, 64);
        assert!(r.makespan > 0.0);
        assert!(r.output_tokens > 0);
        assert!(r.phase_switches >= 1);
        assert!(r.throughput_total() > 0.0);
    }

    #[test]
    fn single_gpu_degenerates_cleanly() {
        let out = engine(1).run(&trace(32), &OraclePredictor);
        assert_eq!(out.report.num_requests, 32);
        // One stage: utilization should be very high (no pipeline bubbles).
        assert!(out.report.mean_utilization > 0.8, "util {}", out.report.mean_utilization);
    }

    #[test]
    fn occupancy_trace_alternates_phases() {
        let out = engine(4).run(&trace(256), &OraclePredictor);
        assert!(out.occupancy.phase_runs() >= 2);
        assert!(out.occupancy.peak() <= 1.0);
    }

    #[test]
    fn infeasible_model_is_rejected() {
        let err = TdPipeEngine::new(
            ModelSpec::llama2_70b(),
            &NodeSpec::l20(1),
            TdPipeConfig::default(),
        )
        .unwrap_err();
        assert!(err.reason.contains("70B"));
    }

    #[test]
    fn deterministic_runs() {
        let t = trace(100);
        let a = engine(2).run(&t, &OraclePredictor);
        let b = engine(2).run(&t, &OraclePredictor);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn more_gpus_give_more_throughput() {
        let t = trace(300);
        let t1 = engine(1).run(&t, &OraclePredictor).report.throughput_total();
        let t4 = engine(4).run(&t, &OraclePredictor).report.throughput_total();
        assert!(t4 > 1.5 * t1, "t1={t1:.0} t4={t4:.0}");
    }

    #[test]
    fn swap_preemption_conserves_and_moves_kv() {
        use crate::config::PreemptionMode;
        use tdpipe_workload::Request;
        struct AlwaysOne;
        impl tdpipe_predictor::OutputLenPredictor for AlwaysOne {
            fn predict(&self, _r: &Request) -> u32 {
                1
            }
        }
        let t = trace(400);
        let run = |mode| {
            let mut cfg = TdPipeConfig::default();
            cfg.engine.preemption = mode;
            TdPipeEngine::new(ModelSpec::llama2_13b(), &NodeSpec::l20(1), cfg)
                .unwrap()
                .run(&t, &AlwaysOne)
                .report
        };
        let rec = run(PreemptionMode::Recompute);
        let swap = run(PreemptionMode::Swap);
        // Both serve everything; the waste shows up in different columns.
        assert_eq!(rec.output_tokens, swap.output_tokens);
        assert!(rec.recomputed_tokens > 0, "pressure scenario must evict");
        assert_eq!(rec.swapped_tokens, 0);
        assert_eq!(swap.recomputed_tokens, 0);
        assert!(swap.swapped_tokens > 0);
        // Swap moves each evicted token out and back in.
        assert_eq!(swap.swapped_tokens % 2, 0);
    }

    #[test]
    fn session_run_completes_and_conserves() {
        use tdpipe_workload::SessionConfig;
        let s = SessionConfig::small(24, 7).generate();
        let out = engine(2).run_sessions(&s, &OraclePredictor);
        assert_eq!(out.report.num_requests, s.len());
        assert!(out.report.makespan > 0.0);
        assert!(out.report.output_tokens > 0);
    }

    #[test]
    fn session_runs_are_deterministic() {
        use tdpipe_workload::SessionConfig;
        let s = SessionConfig::small(32, 11).generate();
        let a = engine(2).run_sessions(&s, &OraclePredictor);
        let b = engine(2).run_sessions(&s, &OraclePredictor);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn session_reuse_prefills_only_fresh_suffixes() {
        use tdpipe_workload::SessionConfig;
        let s = SessionConfig::small(40, 3).generate();
        let resumed_prefix: u64 = s
            .turns
            .iter()
            .filter(|t| t.prev.is_some())
            .map(|t| u64::from(t.shared_prefix))
            .sum();
        assert!(resumed_prefix > 0, "trace needs multi-turn sessions");
        let run = |reuse: bool| {
            let mut cfg = TdPipeConfig::default();
            cfg.engine.session_reuse = reuse;
            cfg.engine.record_metrics = true;
            cfg.engine.record_trace = true;
            TdPipeEngine::new(ModelSpec::llama2_13b(), &NodeSpec::l20(2), cfg)
                .unwrap()
                .run_sessions(&s, &OraclePredictor)
        };
        let on = run(true);
        let off = run(false);
        // Same answers either way; reuse only changes the prefill bill.
        assert_eq!(on.report.output_tokens, off.report.output_tokens);
        assert!(
            on.report.input_tokens < off.report.input_tokens,
            "reuse must shave first-prefill cost: on={} off={}",
            on.report.input_tokens,
            off.report.input_tokens
        );
        // The shave is exactly the claimed shared-prefix tokens.
        let hits = on.metrics.scalar("session_reuse_hits_total").unwrap();
        let saved = on.metrics.scalar("session_reused_tokens_total").unwrap() as u64;
        assert!(hits > 0.0);
        assert_eq!(off.report.input_tokens, on.report.input_tokens + saved);
        // Reuse off: retention budget is zero, so nothing ever hits.
        assert_eq!(off.metrics.scalar("session_reuse_hits_total"), Some(0.0));
        // The journal agrees with the counters.
        let hit_events = on
            .journal
            .events()
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::SessionReuseHit { .. }))
            .count();
        assert_eq!(hit_events as f64, hits);
    }

    #[test]
    fn stealing_never_hurts_much() {
        let t = trace(400);
        let cfg = TdPipeConfig {
            work_stealing: false,
            ..TdPipeConfig::default()
        };
        let without = TdPipeEngine::new(ModelSpec::llama2_13b(), &NodeSpec::l20(4), cfg)
            .unwrap()
            .run(&t, &OraclePredictor)
            .report
            .throughput_total();
        let with = engine(4).run(&t, &OraclePredictor).report.throughput_total();
        assert!(with > 0.95 * without, "with={with:.0} without={without:.0}");
    }
}
