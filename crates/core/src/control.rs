//! Control-plane timing model (the hierarchy-controller's counterpart).
//!
//! Between a batch returning from the GPUs and its successor launching, an
//! inference engine does CPU work: process sampled tokens, detokenise,
//! update the scheduler, assemble and transmit the next batch. In a
//! conventional engine (vLLM 0.5.x) this work is synchronous with
//! execution and serialised on one driver thread across all virtual
//! engines — with large decode batches it stalls the GPUs. TD-Pipe's
//! hierarchy-controller (§3.2) decouples the control plane from the
//! execution plane, overlapping that work with the other in-flight batches
//! so only a small launch cost remains visible.

use crate::config::EngineConfig;

/// Serialised (or decoupled) CPU control-plane resource.
#[derive(Debug, Clone)]
pub struct ControlPlane {
    base: f64,
    per_seq: f64,
    decoupled: bool,
    cpu_free: f64,
}

impl ControlPlane {
    /// Build from engine configuration.
    pub fn new(cfg: &EngineConfig) -> Self {
        ControlPlane {
            base: cfg.engine_overhead,
            per_seq: cfg.control_per_seq,
            decoupled: cfg.decoupled_control,
            cpu_free: 0.0,
        }
    }

    /// A batch of `batch` sequences returned at `ready`; returns the
    /// earliest time a dependent successor job may launch.
    ///
    /// Coupled mode serialises `base + per_seq·batch` on the single CPU
    /// thread; decoupled mode charges only `base` (the bookkeeping itself
    /// overlaps with the other in-flight batches).
    pub fn process(&mut self, ready: f64, batch: usize) -> f64 {
        if self.decoupled {
            ready + self.base
        } else {
            let start = ready.max(self.cpu_free);
            let done = start + self.base + self.per_seq * batch as f64;
            self.cpu_free = done;
            done
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(decoupled: bool) -> EngineConfig {
        EngineConfig {
            engine_overhead: 1e-3,
            control_per_seq: 50e-6,
            decoupled_control: decoupled,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn coupled_serialises_on_one_cpu() {
        let mut c = ControlPlane::new(&cfg(false));
        // Two batches of 100 seqs return at the same instant: the second
        // waits for the first's CPU work.
        let a = c.process(1.0, 100);
        let b = c.process(1.0, 100);
        assert!((a - 1.006).abs() < 1e-12);
        assert!((b - 1.012).abs() < 1e-12);
    }

    #[test]
    fn decoupled_is_flat_and_parallel() {
        let mut c = ControlPlane::new(&cfg(true));
        let a = c.process(1.0, 1000);
        let b = c.process(1.0, 1000);
        assert!((a - 1.001).abs() < 1e-12);
        assert!((b - 1.001).abs() < 1e-12);
    }

    #[test]
    fn coupled_idles_between_sparse_events() {
        let mut c = ControlPlane::new(&cfg(false));
        c.process(0.0, 10);
        // Much later event does not queue behind stale work.
        let t = c.process(100.0, 10);
        assert!((t - 100.0015).abs() < 1e-12);
    }
}
