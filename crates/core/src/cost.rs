//! Analytical execution-cost models per parallel layout.
//!
//! These adapt the per-layer roofline of `tdpipe-hw` to whole scheduler
//! jobs: a prefill batch, a decode step, or a hybrid (chunked prefill +
//! decode) iteration, under either pipeline or tensor parallelism. All
//! engines — TD-Pipe and the four baselines — price their work here, so
//! comparisons differ *only* in scheduling policy.

use tdpipe_hw::{Interconnect, KernelModel, NodeSpec};
use tdpipe_model::{LayerWork, ModelSpec, PipelinePartition, TensorShard};

/// A job priced for the pipeline simulator: per-stage execution seconds
/// plus per-boundary transfer seconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StagedJob {
    /// Execution time on each stage.
    pub exec: Vec<f64>,
    /// Transfer time across each stage boundary (`len = stages − 1`).
    pub xfer: Vec<f64>,
}

impl StagedJob {
    /// End-to-end latency of the job on an empty pipeline.
    pub fn latency(&self) -> f64 {
        self.exec.iter().sum::<f64>() + self.xfer.iter().sum::<f64>()
    }

    /// The bottleneck stage time — the job's contribution to steady-state
    /// pipeline phase length.
    pub fn bottleneck(&self) -> f64 {
        self.exec.iter().cloned().fold(0.0, f64::max)
    }
}

/// Pipeline-parallel job pricing.
#[derive(Debug, Clone)]
pub struct PpCost {
    model: ModelSpec,
    partition: PipelinePartition,
    kernel: KernelModel,
    interconnect: Interconnect,
}

impl PpCost {
    /// Price jobs for `model` split layer-wise over all GPUs of `node`.
    pub fn new(model: ModelSpec, node: &NodeSpec) -> Self {
        let partition = PipelinePartition::balanced(&model, node.num_gpus);
        PpCost {
            kernel: node.kernel(),
            interconnect: node.interconnect.clone(),
            model,
            partition,
        }
    }

    /// Price jobs with an explicit (e.g. LM-head-aware) partition.
    pub fn with_partition(model: ModelSpec, node: &NodeSpec, partition: PipelinePartition) -> Self {
        assert_eq!(partition.num_stages(), node.num_gpus, "one stage per GPU");
        PpCost {
            kernel: node.kernel(),
            interconnect: node.interconnect.clone(),
            model,
            partition,
        }
    }

    /// An LM-head-aware partition: shave layers off the last stage until
    /// its decode-step time (layers + LM head) stops exceeding the other
    /// stages' — the boundary extras otherwise make the last stage the
    /// permanent pipeline bottleneck, especially for large vocabularies.
    ///
    /// `batch_hint` is the representative decode batch size used for the
    /// balance computation.
    pub fn lm_head_aware_partition(
        model: &ModelSpec,
        node: &NodeSpec,
        batch_hint: usize,
    ) -> PipelinePartition {
        let n = node.num_gpus;
        if n <= 1 {
            return PipelinePartition::balanced(model, n);
        }
        let kernel = node.kernel();
        let work = model.decode_layer_work(batch_hint, batch_hint as u64 * 300);
        let t_layer = kernel.layer_time(&work);
        let t_head = kernel.layer_time(&model.lm_head_work(batch_hint as u64));
        let base = model.layers / n;
        // Layers to move off the last stage (≥0, keep at least one there).
        // analyzer: allow(lossy-float-cast) — both times are positive and
        // the ratio is a handful of layers; `.min(base-1)` clamps the
        // result into range, so round-to-nearest is the intent.
        let shift = ((t_head / t_layer).round() as u32).min(base.saturating_sub(1));
        let mut counts = vec![0u32; n as usize];
        let mut remaining = model.layers;
        let last = (base - shift).max(1);
        counts[n as usize - 1] = last;
        remaining -= last;
        // Spread the rest as evenly as possible over the first n-1 stages.
        let front = n as usize - 1;
        for (i, c) in counts.iter_mut().take(front).enumerate() {
            let share = remaining.div_ceil((front - i) as u32);
            *c = share;
            remaining -= share;
        }
        debug_assert_eq!(remaining, 0);
        PipelinePartition::from_layer_counts(model, &counts)
    }

    /// Number of pipeline stages.
    #[inline]
    pub fn num_stages(&self) -> u32 {
        self.partition.num_stages()
    }

    /// The layer partition in use.
    #[inline]
    pub fn partition(&self) -> &PipelinePartition {
        &self.partition
    }

    /// The model being priced.
    #[inline]
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    fn staged_into(
        &self,
        per_layer: &LayerWork,
        logits_tokens: u64,
        embed_tokens: u64,
        out: &mut StagedJob,
    ) {
        let n = self.num_stages() as usize;
        out.exec.clear();
        out.exec.reserve(n);
        for a in self.partition.stages() {
            // At most two extras per stage (embedding, LM head): a stack
            // buffer keeps job pricing allocation-free on the decode path.
            let mut extras: [LayerWork; 2] = Default::default();
            let mut n_extras = 0;
            if a.has_embedding && embed_tokens > 0 {
                extras[n_extras] = self.model.embedding_work(embed_tokens);
                n_extras += 1;
            }
            if a.has_lm_head && logits_tokens > 0 {
                extras[n_extras] = self.model.lm_head_work(logits_tokens);
                n_extras += 1;
            }
            out.exec
                .push(self.kernel.stage_time(per_layer, a.layer_count, &extras[..n_extras]));
        }
        let act_bytes = per_layer.tokens * self.model.activation_bytes_per_token();
        out.xfer.clear();
        out.xfer
            .resize(n.saturating_sub(1), self.interconnect.p2p_time(act_bytes));
    }

    /// A prefill batch over the given sequence lengths. Each sequence
    /// produces one logit row (its first generated token).
    pub fn prefill_job(&self, seq_lens: &[u32]) -> StagedJob {
        let mut out = StagedJob::default();
        self.prefill_job_into(seq_lens, &mut out);
        out
    }

    /// [`Self::prefill_job`] into a caller-owned scratch job (hot loops
    /// reuse one `StagedJob` instead of allocating per launch).
    pub fn prefill_job_into(&self, seq_lens: &[u32], out: &mut StagedJob) {
        let work = self.model.prefill_layer_work(seq_lens);
        let tokens = work.tokens;
        self.staged_into(&work, seq_lens.len() as u64, tokens, out);
    }

    /// [`Self::prefill_job_into`] from pre-accumulated batch statistics
    /// (token total, attention FLOPs, sequence count) instead of the raw
    /// sequence lengths. Bit-identical to the slice form whenever the parts
    /// were accumulated in the same order — see
    /// [`tdpipe_model::ModelSpec::prefill_layer_work_from_parts`]. This is
    /// what lets the decode→prefill estimator price cached batch prefixes
    /// in O(stages) per query instead of re-walking every sequence.
    pub fn prefill_job_from_parts(
        &self,
        tokens: u64,
        attn_flops: f64,
        num_seqs: u64,
        out: &mut StagedJob,
    ) {
        let work = self.model.prefill_layer_work_from_parts(tokens, attn_flops);
        self.staged_into(&work, num_seqs, tokens, out);
    }

    /// One decode step for a batch of `batch` requests with `total_ctx`
    /// total context tokens.
    pub fn decode_job(&self, batch: usize, total_ctx: u64) -> StagedJob {
        let mut out = StagedJob::default();
        self.decode_job_into(batch, total_ctx, &mut out);
        out
    }

    /// [`Self::decode_job`] into a caller-owned scratch job.
    pub fn decode_job_into(&self, batch: usize, total_ctx: u64, out: &mut StagedJob) {
        let work = self.model.decode_layer_work(batch, total_ctx);
        self.staged_into(&work, batch as u64, batch as u64, out);
    }

    /// One hybrid iteration: a decode sub-batch plus prefill chunks
    /// (`(chunk_len, cached_prefix)` pairs).
    ///
    /// The GEMMs of both parts share one weight stream (that fusion is
    /// real), but the attention kernels and ragged-batch handling overlap
    /// only partially: `overlap` interpolates between fully-serialised
    /// (`0.0`) and ideal roofline fusion (`1.0`).
    pub fn hybrid_job(
        &self,
        batch: usize,
        total_ctx: u64,
        chunks: &[(u32, u32)],
        completed_chunks: usize,
        overlap: f64,
    ) -> StagedJob {
        let mut out = StagedJob::default();
        self.hybrid_job_into(batch, total_ctx, chunks, completed_chunks, overlap, &mut out);
        out
    }

    /// [`Self::hybrid_job`] into a caller-owned scratch job.
    pub fn hybrid_job_into(
        &self,
        batch: usize,
        total_ctx: u64,
        chunks: &[(u32, u32)],
        completed_chunks: usize,
        overlap: f64,
        out: &mut StagedJob,
    ) {
        let (t_layer, tokens) = hybrid_layer_time(
            &self.model,
            &self.kernel,
            batch,
            total_ctx,
            chunks,
            overlap,
            1,
        );
        let logits = batch as u64 + completed_chunks as u64;
        let n = self.num_stages() as usize;
        out.exec.clear();
        out.exec.reserve(n);
        for a in self.partition.stages() {
            let mut t = t_layer * a.layer_count as f64;
            if a.has_embedding && tokens > 0 {
                t += self.kernel.layer_time(&self.model.embedding_work(tokens));
            }
            if a.has_lm_head && logits > 0 {
                t += self.kernel.layer_time(&self.model.lm_head_work(logits));
            }
            out.exec.push(t);
        }
        let act_bytes = tokens * self.model.activation_bytes_per_token();
        out.xfer.clear();
        out.xfer.resize(n.saturating_sub(1), self.interconnect.p2p_time(act_bytes));
    }
}

/// Per-layer time and token count of a hybrid (decode + chunks) iteration
/// at tensor-parallel degree `degree`.
///
/// Weights stream once (charged to the decode part, or to the chunks when
/// there is no decode part); the chunk part's remaining time overlaps the
/// decode part by the `overlap` fraction of the ideal.
fn hybrid_layer_time(
    model: &ModelSpec,
    kernel: &KernelModel,
    batch: usize,
    total_ctx: u64,
    chunks: &[(u32, u32)],
    overlap: f64,
    degree: u32,
) -> (f64, u64) {
    let overlap = overlap.clamp(0.0, 1.0);
    let d_work = if batch > 0 {
        self_decode(model, batch, total_ctx)
    } else {
        LayerWork::default()
    };
    let mut c_work = LayerWork::default();
    for &(chunk, prefix) in chunks {
        c_work = c_work.merge(&model.chunk_layer_work(chunk, prefix));
    }
    if batch > 0 {
        // Weights already streamed by the decode part.
        c_work.weight_bytes = 0.0;
    }
    let t_d = if batch > 0 {
        kernel.layer_time_tp(&d_work, degree)
    } else {
        0.0
    };
    let t_c = if c_work.tokens > 0 {
        kernel.layer_time_tp(&c_work, degree)
    } else {
        0.0
    };
    let fused = t_d.max(t_c);
    let serial = t_d + t_c;
    let t = overlap * fused + (1.0 - overlap) * serial;
    (t, d_work.tokens + c_work.tokens)
}

#[inline]
fn self_decode(model: &ModelSpec, batch: usize, total_ctx: u64) -> LayerWork {
    model.decode_layer_work(batch, total_ctx)
}

/// Tensor-parallel job pricing: the node acts as one lock-step resource;
/// every layer pays two all-reduces over the batch's activations.
#[derive(Debug, Clone)]
pub struct TpCost {
    model: ModelSpec,
    shard: TensorShard,
    kernel: KernelModel,
    interconnect: Interconnect,
}

impl TpCost {
    /// Price jobs for `model` sharded over all GPUs of `node`.
    pub fn new(model: ModelSpec, node: &NodeSpec) -> Self {
        TpCost {
            shard: TensorShard::new(node.num_gpus),
            kernel: node.kernel(),
            interconnect: node.interconnect.clone(),
            model,
        }
    }

    /// Tensor-parallel degree.
    #[inline]
    pub fn degree(&self) -> u32 {
        self.shard.degree
    }

    /// The model being priced.
    #[inline]
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// `(compute_seconds, comm_seconds)` for a batch described by its
    /// per-layer work; exposed separately so Figure 6's breakdown can be
    /// reported directly.
    pub fn split_time(&self, per_layer: &LayerWork, logits_tokens: u64) -> (f64, f64) {
        let layers = self.model.layers;
        let mut compute =
            self.kernel.layer_time_tp(per_layer, self.shard.degree) * layers as f64;
        if per_layer.tokens > 0 {
            compute += self
                .kernel
                .layer_time_tp(&self.model.embedding_work(per_layer.tokens), self.shard.degree);
        }
        if logits_tokens > 0 {
            compute += self
                .kernel
                .layer_time_tp(&self.model.lm_head_work(logits_tokens), self.shard.degree);
        }
        let msg = self.shard.allreduce_bytes(&self.model, per_layer.tokens);
        // Compute-bound batches (prefill) run their all-reduces while GEMMs
        // contend for the GPUs; memory-bound decode steps see the quiet-
        // phase bandwidth of Table 1.
        let compute_bound =
            per_layer.arithmetic_intensity() > self.kernel.gpu.balance_flops_per_byte();
        let per_op = if compute_bound {
            self.interconnect.allreduce_time_contended(msg, self.shard.degree)
        } else {
            self.interconnect.allreduce_time(msg, self.shard.degree)
        };
        let comm = per_op * self.shard.allreduce_ops(layers) as f64;
        (compute, comm)
    }

    /// Total time for a prefill batch.
    pub fn prefill_time(&self, seq_lens: &[u32]) -> f64 {
        let work = self.model.prefill_layer_work(seq_lens);
        let (c, m) = self.split_time(&work, seq_lens.len() as u64);
        c + m
    }

    /// Compute/comm breakdown for a prefill batch (Fig. 6).
    pub fn prefill_breakdown(&self, seq_lens: &[u32]) -> (f64, f64) {
        let work = self.model.prefill_layer_work(seq_lens);
        self.split_time(&work, seq_lens.len() as u64)
    }

    /// Total time for one decode step.
    pub fn decode_time(&self, batch: usize, total_ctx: u64) -> f64 {
        let work = self.model.decode_layer_work(batch, total_ctx);
        let (c, m) = self.split_time(&work, batch as u64);
        c + m
    }

    /// Total time for one hybrid (chunked prefill + decode) iteration;
    /// see [`PpCost::hybrid_job`] for the `overlap` semantics.
    pub fn hybrid_time(
        &self,
        batch: usize,
        total_ctx: u64,
        chunks: &[(u32, u32)],
        completed_chunks: usize,
        overlap: f64,
    ) -> f64 {
        let (t_layer, tokens) = hybrid_layer_time(
            &self.model,
            &self.kernel,
            batch,
            total_ctx,
            chunks,
            overlap,
            self.shard.degree,
        );
        let layers = self.model.layers;
        let mut compute = t_layer * layers as f64;
        if tokens > 0 {
            compute += self
                .kernel
                .layer_time_tp(&self.model.embedding_work(tokens), self.shard.degree);
        }
        let logits = batch as u64 + completed_chunks as u64;
        if logits > 0 {
            compute += self
                .kernel
                .layer_time_tp(&self.model.lm_head_work(logits), self.shard.degree);
        }
        let msg = self.shard.allreduce_bytes(&self.model, tokens);
        let comm = self.interconnect.allreduce_time(msg, self.shard.degree)
            * self.shard.allreduce_ops(layers) as f64;
        compute + comm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node4() -> NodeSpec {
        NodeSpec::l20(4)
    }

    #[test]
    fn pp_stage_times_are_balanced_for_even_layer_splits() {
        let c = PpCost::new(ModelSpec::llama2_13b(), &node4()); // 40/4 = 10 each
        let job = c.decode_job(128, 128 * 300);
        assert_eq!(job.exec.len(), 4);
        assert_eq!(job.xfer.len(), 3);
        // Interior stages identical; boundary stages pay embed / LM head.
        assert!((job.exec[1] - job.exec[2]).abs() < 1e-12);
        assert!(job.exec[3] >= job.exec[1]); // LM head ≥ plain
        let spread = job.bottleneck() / job.exec.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 1.35, "stages too imbalanced: {spread}");
    }

    #[test]
    fn pp_transfers_are_tiny_relative_to_compute() {
        let c = PpCost::new(ModelSpec::llama2_13b(), &node4());
        let job = c.prefill_job(&[512, 512, 512, 512]);
        assert!(job.xfer[0] < 0.05 * job.exec[0], "xfer {} exec {}", job.xfer[0], job.exec[0]);
    }

    #[test]
    fn tp_decode_is_latency_punished_on_pcie() {
        // TP decode all-reduces a small message 2×layers times per step —
        // on PCIe that's a large fraction of the step (§2.2.3).
        let c = TpCost::new(ModelSpec::llama2_13b(), &node4());
        let work = c.model().decode_layer_work(64, 64 * 300);
        let (comp, comm) = c.split_time(&work, 64);
        assert!(comm > 0.3 * comp, "comm {comm} comp {comp}");
    }

    #[test]
    fn tp_prefill_comm_fraction_matches_fig6_ballpark() {
        // Fig. 6: at 4 L20 GPUs communication is ~47% of prefill time.
        let c = TpCost::new(ModelSpec::llama_30b(), &node4());
        let (comp, comm) = c.prefill_breakdown(&[1024, 1024, 1024, 1024]);
        let frac = comm / (comp + comm);
        assert!((0.30..0.65).contains(&frac), "comm fraction {frac}");
    }

    #[test]
    fn single_gpu_tp_and_pp_agree() {
        let node1 = NodeSpec::l20(1);
        let model = ModelSpec::llama2_13b();
        let pp = PpCost::new(model.clone(), &node1);
        let tp = TpCost::new(model, &node1);
        let pj = pp.decode_job(32, 32 * 200);
        assert_eq!(pj.exec.len(), 1);
        let rel = (pj.latency() - tp.decode_time(32, 32 * 200)).abs() / pj.latency();
        assert!(rel < 1e-9, "single-GPU layouts should coincide, rel={rel}");
    }

    #[test]
    fn hybrid_job_prices_decode_plus_chunks() {
        let c = PpCost::new(ModelSpec::llama2_13b(), &node4());
        let d = c.decode_job(64, 64 * 200);
        let h = c.hybrid_job(64, 64 * 200, &[(256, 0)], 0, 0.4);
        let p = c.hybrid_job(0, 0, &[(256, 0)], 0, 0.4);
        assert!(h.latency() > d.latency());
        assert!(h.latency() > p.latency());
        // Partial fusion: cheaper than running the two jobs back to back...
        assert!(h.latency() < d.latency() + p.latency());
        // ...but a fully-overlapped hybrid is cheaper still, and a fully
        // serialised one costs more.
        let h_ideal = c.hybrid_job(64, 64 * 200, &[(256, 0)], 0, 1.0);
        let h_serial = c.hybrid_job(64, 64 * 200, &[(256, 0)], 0, 0.0);
        assert!(h_ideal.latency() < h.latency());
        assert!(h_serial.latency() > h.latency());
    }

    #[test]
    fn four_gpu_pp_decode_step_beats_single_gpu() {
        let model = ModelSpec::llama2_13b();
        let c1 = PpCost::new(model.clone(), &NodeSpec::l20(1));
        let c4 = PpCost::new(model, &node4());
        let t1 = c1.decode_job(128, 128 * 300).latency();
        let t4 = c4.decode_job(128, 128 * 300).bottleneck();
        // Steady-state per-step cost under PP is the bottleneck stage.
        assert!(t4 < t1 / 2.5, "t1={t1} t4={t4}");
    }
}
