//! The engine's metrics handle: one struct owning the registry, every
//! pre-registered handle, and the virtual-time series sampler.
//!
//! Shared by the TD-Pipe engine and all four baselines (`tdpipe-baselines`
//! constructs one per run), so the whole system exports a single metric
//! taxonomy and `metrics-diff` can compare any two schedulers. Gated by
//! [`crate::config::EngineConfig::record_metrics`]: a disabled handle is a
//! single-branch no-op per call and exports an empty snapshot — a pure
//! observer either way (pinned in `tests/metrics_export.rs`).

use crate::exec::PlaneStats;
use tdpipe_kvcache::{AllocStats, Phase};
use tdpipe_metrics::{
    Counter, HistogramId, MetricsSnapshot, Registry, Series, SeriesPoint, SeriesSampler,
    DEFAULT_INTERVAL,
};
use tdpipe_sim::{RunReport, SegmentKind, Timeline};
use tdpipe_trace::{AdmitReason, EvictMode, PrefillStopReason};

fn admit_label(r: AdmitReason) -> &'static str {
    match r {
        AdmitReason::FirstPrefill => "first_prefill",
        AdmitReason::Recompute => "recompute",
        AdmitReason::SwapIn => "swap_in",
    }
}

fn stop_label(r: PrefillStopReason) -> &'static str {
    match r {
        PrefillStopReason::Overflow => "overflow",
        PrefillStopReason::Memory => "memory",
        PrefillStopReason::Arrival => "arrival",
        PrefillStopReason::Budget => "budget",
        PrefillStopReason::Exhausted => "exhausted",
    }
}

fn phase_label(p: Phase) -> &'static str {
    match p {
        Phase::Prefill => "prefill",
        Phase::Decode => "decode",
    }
}

/// The gauges the virtual-time sampler tracks, in order.
const SERIES: [&str; 4] = [
    "series_kv_occupancy",
    "series_inflight_decode_batches",
    "series_steal_withheld",
    "series_pending_requests",
];

/// Every instrumentation point the engines share, pre-registered so the
/// hot path is handle-indexed.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    reg: Registry,
    sampler: SeriesSampler,
    admit: [Counter; 3],
    admit_tokens: Counter,
    stop: [Counter; 5],
    evict_recompute: Counter,
    evict_swap: Counter,
    steal_withhold_events: Counter,
    steal_withheld_requests: Counter,
    steal_supplement_events: Counter,
    steal_supplemented_requests: Counter,
    switch_decisions: Counter,
    switch_margin: HistogramId,
    decode_steps: Counter,
    decode_batch_size: HistogramId,
    prefill_batches: Counter,
    prefill_batch_requests: HistogramId,
    prefill_batch_tokens: HistogramId,
    chunk_tokens: HistogramId,
    phase_count: [Counter; 2],
    phase_seconds: [HistogramId; 2],
}

impl EngineMetrics {
    /// Build the handle; `enabled` comes from
    /// [`crate::config::EngineConfig::record_metrics`].
    pub fn new(enabled: bool) -> Self {
        let mut reg = Registry::gated(enabled);
        let admit = [
            AdmitReason::FirstPrefill,
            AdmitReason::Recompute,
            AdmitReason::SwapIn,
        ]
        .map(|r| {
            reg.counter(
                "tdpipe_prefill_admit_total",
                "Prefill admissions by reason",
                &[("reason", admit_label(r))],
            )
        });
        let admit_tokens = reg.counter(
            "tdpipe_prefill_admit_tokens_total",
            "Prompt tokens admitted into prefill",
            &[],
        );
        let stop = [
            PrefillStopReason::Overflow,
            PrefillStopReason::Memory,
            PrefillStopReason::Arrival,
            PrefillStopReason::Budget,
            PrefillStopReason::Exhausted,
        ]
        .map(|r| {
            reg.counter(
                "tdpipe_prefill_stop_total",
                "Prefill packing/phase stops by reason",
                &[("reason", stop_label(r))],
            )
        });
        let evict_recompute = reg.counter(
            "tdpipe_evict_total",
            "Decode-overflow evictions by mode",
            &[("mode", "recompute")],
        );
        let evict_swap = reg.counter(
            "tdpipe_evict_total",
            "Decode-overflow evictions by mode",
            &[("mode", "swap")],
        );
        let steal_withhold_events = reg.counter(
            "tdpipe_steal_withhold_events_total",
            "Rebalance events that withheld requests",
            &[],
        );
        let steal_withheld_requests = reg.counter(
            "tdpipe_steal_withheld_requests_total",
            "Requests moved into the withheld pool",
            &[],
        );
        let steal_supplement_events = reg.counter(
            "tdpipe_steal_supplement_events_total",
            "Rebalance events that supplemented a batch",
            &[],
        );
        let steal_supplemented_requests = reg.counter(
            "tdpipe_steal_supplemented_requests_total",
            "Requests moved out of the withheld pool into batches",
            &[],
        );
        let switch_decisions = reg.counter(
            "tdpipe_switch_decisions_total",
            "Spatial-temporal decode-to-prefill comparisons evaluated",
            &[],
        );
        let switch_margin = reg.histogram(
            "tdpipe_switch_margin",
            "Absolute spatial-temporal score gap per comparison",
            &[],
        );
        let decode_steps = reg.counter(
            "tdpipe_decode_steps_total",
            "Decode batch-steps executed",
            &[],
        );
        let decode_batch_size = reg.histogram(
            "tdpipe_decode_batch_size",
            "Decode batch sizes at launch (requests)",
            &[],
        );
        let prefill_batches = reg.counter(
            "tdpipe_prefill_batches_total",
            "Prefill batches launched",
            &[],
        );
        let prefill_batch_requests = reg.histogram(
            "tdpipe_prefill_batch_requests",
            "Prefill batch sizes at launch (requests)",
            &[],
        );
        let prefill_batch_tokens = reg.histogram(
            "tdpipe_prefill_batch_tokens",
            "Prefill batch sizes at launch (prompt tokens)",
            &[],
        );
        let chunk_tokens = reg.histogram(
            "tdpipe_chunk_tokens",
            "Chunked-prefill chunk sizes (tokens, hybrid baselines)",
            &[],
        );
        let phase_count = [Phase::Prefill, Phase::Decode].map(|p| {
            reg.counter(
                "tdpipe_phase_total",
                "Completed engine phases by kind",
                &[("phase", phase_label(p))],
            )
        });
        let phase_seconds = [Phase::Prefill, Phase::Decode].map(|p| {
            reg.histogram(
                "tdpipe_phase_seconds",
                "Phase durations by kind (virtual seconds)",
                &[("phase", phase_label(p))],
            )
        });
        EngineMetrics {
            sampler: SeriesSampler::gated(enabled, DEFAULT_INTERVAL, &SERIES),
            reg,
            admit,
            admit_tokens,
            stop,
            evict_recompute,
            evict_swap,
            steal_withhold_events,
            steal_withheld_requests,
            steal_supplement_events,
            steal_supplemented_requests,
            switch_decisions,
            switch_margin,
            decode_steps,
            decode_batch_size,
            prefill_batches,
            prefill_batch_requests,
            prefill_batch_tokens,
            chunk_tokens,
            phase_count,
            phase_seconds,
        }
    }

    /// Whether the handle records anything (mirrors the config gate).
    pub fn is_enabled(&self) -> bool {
        self.reg.is_enabled()
    }

    pub fn on_prefill_admit(&mut self, reason: AdmitReason, tokens: u64) {
        let i = match reason {
            AdmitReason::FirstPrefill => 0,
            AdmitReason::Recompute => 1,
            AdmitReason::SwapIn => 2,
        };
        self.reg.inc(self.admit[i]);
        self.reg.add(self.admit_tokens, tokens);
    }

    pub fn on_prefill_stop(&mut self, reason: PrefillStopReason) {
        let i = match reason {
            PrefillStopReason::Overflow => 0,
            PrefillStopReason::Memory => 1,
            PrefillStopReason::Arrival => 2,
            PrefillStopReason::Budget => 3,
            PrefillStopReason::Exhausted => 4,
        };
        self.reg.inc(self.stop[i]);
    }

    /// A prefill batch was launched: `n` requests, `tokens` prompt tokens.
    pub fn on_prefill_batch(&mut self, n: usize, tokens: u64) {
        self.reg.inc(self.prefill_batches);
        self.reg.observe(self.prefill_batch_requests, n as f64);
        self.reg.observe(self.prefill_batch_tokens, tokens as f64);
    }

    /// A chunked-prefill chunk was scheduled (hybrid baselines).
    pub fn on_chunk(&mut self, tokens: u64) {
        self.reg.observe(self.chunk_tokens, tokens as f64);
    }

    /// A decode batch-step was launched with `batch` live requests.
    pub fn on_decode_step(&mut self, batch: usize) {
        self.reg.inc(self.decode_steps);
        self.reg.observe(self.decode_batch_size, batch as f64);
    }

    pub fn on_evict(&mut self, mode: EvictMode) {
        self.on_evictions(mode, 1);
    }

    /// Bulk eviction count — the baselines tally evictions inside their
    /// shared decode-advance helper and report the total once at finish.
    pub fn on_evictions(&mut self, mode: EvictMode, n: u64) {
        match mode {
            EvictMode::Recompute => self.reg.add(self.evict_recompute, n),
            EvictMode::Swap => self.reg.add(self.evict_swap, n),
        }
    }

    /// Outcome of one work-stealing rebalance.
    pub fn on_steal(&mut self, withheld: usize, supplemented: usize) {
        if withheld > 0 {
            self.reg.inc(self.steal_withhold_events);
            self.reg.add(self.steal_withheld_requests, withheld as u64);
        }
        if supplemented > 0 {
            self.reg.inc(self.steal_supplement_events);
            self.reg
                .add(self.steal_supplemented_requests, supplemented as u64);
        }
    }

    /// One spatial-temporal comparison with its score gap.
    pub fn on_switch_decision(&mut self, spatial: f64, temporal: f64) {
        self.reg.inc(self.switch_decisions);
        self.reg.observe(self.switch_margin, (spatial - temporal).abs());
    }

    /// A phase completed, spanning `start..end` virtual seconds.
    pub fn on_phase_end(&mut self, phase: Phase, start: f64, end: f64) {
        let i = match phase {
            Phase::Prefill => 0,
            Phase::Decode => 1,
        };
        self.reg.inc(self.phase_count[i]);
        self.reg.observe(self.phase_seconds[i], (end - start).max(0.0));
    }

    /// Fold in the session-KV reuse totals of a closed-loop run (see
    /// `TdPipeEngine::run_sessions`). Registered lazily — only session
    /// runs call this, so non-session snapshots keep the baseline metric
    /// set byte-identical.
    pub fn on_session_summary(
        &mut self,
        stats: tdpipe_kvcache::RetainStats,
        reuse_misses: u64,
    ) {
        if !self.reg.is_enabled() {
            return;
        }
        let reg = &mut self.reg;
        let add = |reg: &mut Registry, name: &str, help: &str, v: u64| {
            let c = reg.counter(name, help, &[]);
            reg.add(c, v);
        };
        add(
            reg,
            "session_kv_retains_total",
            "Finished turns whose KV was retained for a successor",
            stats.retains,
        );
        add(
            reg,
            "session_reuse_hits_total",
            "Resumed turns admitted with their retained prefix resident",
            stats.claims,
        );
        add(
            reg,
            "session_reuse_misses_total",
            "Resumed turns admitted with no retained prefix (full prefill)",
            reuse_misses,
        );
        add(
            reg,
            "session_kv_drops_total",
            "Retained prefixes reclaimed before reuse (budget/pressure)",
            stats.drops,
        );
        add(
            reg,
            "session_reused_tokens_total",
            "Prefix tokens served from retained KV instead of prefill",
            stats.claimed_tokens,
        );
        let g = reg.gauge(
            "session_retained_blocks_high_water",
            "Most KV blocks ever held idle by retained session prefixes",
            &[],
        );
        reg.set(g, stats.retained_blocks_high_water as f64);
    }

    /// Feed the series sampler the engine's live state at virtual `now`.
    pub fn sample(
        &mut self,
        now: f64,
        kv_occupancy: f64,
        inflight_batches: usize,
        withheld: usize,
        pending: usize,
    ) {
        self.sampler.sample(
            now,
            &[
                kv_occupancy,
                inflight_batches as f64,
                withheld as f64,
                pending as f64,
            ],
        );
    }

    /// Finalise: fold in the run-level aggregates, allocator stats,
    /// per-stage activity, and plane stats, then export the snapshot.
    /// Consumes the handle — metrics are a per-run object.
    pub fn finish(
        mut self,
        report: &RunReport,
        alloc: AllocStats,
        kv_blocks: u64,
        timeline: &Timeline,
        plane: PlaneStats,
    ) -> MetricsSnapshot {
        if !self.reg.is_enabled() {
            return MetricsSnapshot::empty();
        }
        let reg = &mut self.reg;
        let set = |reg: &mut Registry, name: &str, help: &str, v: f64| {
            let g = reg.gauge(name, help, &[]);
            reg.set(g, v);
        };
        // Run-level headline quantities — the `metrics-diff` gate set.
        set(reg, "throughput_total", "Total tokens per second", report.throughput_total());
        set(reg, "throughput_output", "Output tokens per second", report.throughput_output());
        set(reg, "makespan", "Run makespan (virtual seconds)", report.makespan);
        set(reg, "mean_utilization", "Mean device busy fraction", report.mean_utilization);
        set(reg, "recompute_overhead", "Recomputed-token fraction", report.recompute_overhead());
        set(reg, "num_requests", "Requests served", report.num_requests as f64);
        set(reg, "input_tokens", "Prompt tokens served", report.input_tokens as f64);
        set(reg, "output_tokens", "Generated tokens served", report.output_tokens as f64);
        set(reg, "recomputed_tokens", "Tokens prefilled more than once", report.recomputed_tokens as f64);
        set(reg, "swapped_tokens", "Tokens moved over the host link", report.swapped_tokens as f64);
        set(reg, "phase_switches", "Prefill/decode phase switches", report.phase_switches as f64);
        if let Some(l) = &report.latency {
            set(reg, "ttft_p50", "Median time to first token (s)", l.ttft_p50);
            set(reg, "ttft_p95", "95th-percentile time to first token (s)", l.ttft_p95);
            set(reg, "tpot_p50", "Median time per output token (s)", l.tpot_p50);
            set(reg, "tpot_p95", "95th-percentile time per output token (s)", l.tpot_p95);
        }

        // KV allocator lifetime stats.
        let kv = |reg: &mut Registry, name: &str, help: &str, v: u64| {
            let c = reg.counter(name, help, &[]);
            reg.add(c, v);
        };
        kv(reg, "kv_alloc_total", "KV allocations", alloc.allocs);
        kv(reg, "kv_free_total", "KV frees", alloc.frees);
        kv(reg, "kv_extend_total", "KV extends (decode steps survived)", alloc.extends);
        kv(reg, "kv_oom_rejections_total", "KV operations rejected for memory", alloc.oom_rejections);
        let hw = reg.gauge(
            "kv_occupancy_high_water",
            "Peak fraction of KV blocks in use",
            &[],
        );
        let frac = if kv_blocks == 0 {
            1.0
        } else {
            alloc.used_blocks_high_water as f64 / kv_blocks as f64
        };
        reg.set(hw, frac);

        // Execution-plane stats: per-rank busy/idle virtual seconds (and
        // comm, when segments were kept) plus completion-queue depth.
        let span = timeline.makespan();
        for d in 0..timeline.num_devices() as u32 {
            let stage = d.to_string();
            let busy = timeline.busy_time(d);
            let g = reg.gauge(
                "stage_busy_seconds",
                "Per-stage busy virtual seconds",
                &[("stage", &stage)],
            );
            reg.set(g, busy);
            let g = reg.gauge(
                "stage_idle_seconds",
                "Per-stage idle virtual seconds within the run span",
                &[("stage", &stage)],
            );
            reg.set(g, (span - busy).max(0.0));
            let g = reg.gauge(
                "stage_busy_fraction",
                "Per-stage busy fraction of the run span",
                &[("stage", &stage)],
            );
            reg.set(g, timeline.utilization(d));
        }
        if !timeline.segments().is_empty() {
            for d in 0..timeline.num_devices() as u32 {
                let comm: f64 = timeline
                    .segments()
                    .iter()
                    .filter(|s| s.device == d && s.kind == SegmentKind::Comm)
                    .map(|s| s.end - s.start)
                    .sum();
                let stage = d.to_string();
                let g = reg.gauge(
                    "stage_comm_seconds",
                    "Per-stage communication virtual seconds (segment-recorded runs)",
                    &[("stage", &stage)],
                );
                reg.set(g, comm);
            }
        }
        let g = reg.gauge(
            "plane_queue_depth_high_water",
            "Most jobs ever launched-but-uncollected at once",
            &[],
        );
        reg.set(g, plane.queue_depth_high_water as f64);

        // Close out the sampled series at the makespan and attach the
        // per-stage busy-fraction series derived on the same grid.
        self.sampler.finish(report.makespan);
        let mut series = self.sampler.into_series();
        series.extend(stage_busy_series(timeline, DEFAULT_INTERVAL));
        self.reg.snapshot_with(series)
    }
}

/// Per-stage busy fraction per grid interval, derived from recorded
/// timeline segments (empty when `record_timeline` was off). Interval
/// `[k·dt, (k+1)·dt)` gets the fraction of it the stage spent busy,
/// stamped at `k·dt` — the same virtual-time grid as the live sampler.
pub fn stage_busy_series(timeline: &Timeline, dt: f64) -> Vec<Series> {
    if timeline.segments().is_empty() {
        return Vec::new();
    }
    let span = timeline.makespan();
    let mut out = Vec::new();
    for d in 0..timeline.num_devices() as u32 {
        let mut points = Vec::new();
        let mut t = 0.0;
        while t < span {
            let busy = timeline.busy_in_window(d, t, t + dt);
            points.push(SeriesPoint {
                t,
                v: (busy / dt).clamp(0.0, 1.0),
            });
            t += dt;
        }
        out.push(Series {
            name: format!("series_stage_busy_fraction_{d}"),
            points,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_exports_empty_and_ignores_everything() {
        let mut m = EngineMetrics::new(false);
        m.on_prefill_admit(AdmitReason::FirstPrefill, 100);
        m.on_decode_step(32);
        m.on_evict(EvictMode::Recompute);
        m.sample(5.0, 0.5, 4, 2, 10);
        let report = RunReport {
            scheduler: "x".into(),
            makespan: 10.0,
            num_requests: 1,
            input_tokens: 10,
            output_tokens: 10,
            recomputed_tokens: 0,
            swapped_tokens: 0,
            phase_switches: 1,
            mean_utilization: 0.5,
            latency: None,
        };
        let snap = m.finish(
            &report,
            AllocStats::default(),
            100,
            &Timeline::new(false),
            PlaneStats::default(),
        );
        assert!(snap.is_empty());
    }

    #[test]
    fn enabled_handle_exports_counters_and_gauges() {
        let mut m = EngineMetrics::new(true);
        m.on_prefill_admit(AdmitReason::FirstPrefill, 100);
        m.on_prefill_admit(AdmitReason::Recompute, 50);
        m.on_prefill_batch(2, 150);
        m.on_decode_step(32);
        m.on_steal(3, 0);
        m.on_switch_decision(0.9, 0.4);
        m.on_phase_end(Phase::Prefill, 0.0, 2.0);
        let report = RunReport {
            scheduler: "x".into(),
            makespan: 10.0,
            num_requests: 2,
            input_tokens: 150,
            output_tokens: 60,
            recomputed_tokens: 50,
            swapped_tokens: 0,
            phase_switches: 1,
            mean_utilization: 0.5,
            latency: None,
        };
        let snap = m.finish(
            &report,
            AllocStats {
                allocs: 3,
                frees: 2,
                extends: 40,
                oom_rejections: 1,
                used_blocks_high_water: 80,
            },
            100,
            &Timeline::new(false),
            PlaneStats {
                queue_depth_high_water: 4,
            },
        );
        assert_eq!(
            snap.scalar("throughput_total"),
            Some(report.throughput_total())
        );
        assert_eq!(snap.scalar("kv_alloc_total"), Some(3.0));
        assert_eq!(snap.scalar("kv_occupancy_high_water"), Some(0.8));
        assert_eq!(snap.scalar("plane_queue_depth_high_water"), Some(4.0));
        let admits = snap
            .get_labeled("tdpipe_prefill_admit_total", &[("reason", "recompute")])
            .expect("labelled admit counter");
        assert_eq!(
            admits.value,
            tdpipe_metrics::MetricValue::Counter(1)
        );
        // Session counters are lazily registered: a run that never calls
        // on_session_summary exports none of them.
        assert!(snap.scalar("session_reuse_hits_total").is_none());
    }

    #[test]
    fn session_summary_registers_lazily_and_exports() {
        let mut m = EngineMetrics::new(true);
        m.on_session_summary(
            tdpipe_kvcache::RetainStats {
                retains: 10,
                claims: 7,
                drops: 3,
                claimed_tokens: 1400,
                retained_blocks_high_water: 55,
            },
            2,
        );
        let report = RunReport {
            scheduler: "x".into(),
            makespan: 1.0,
            num_requests: 1,
            input_tokens: 1,
            output_tokens: 1,
            recomputed_tokens: 0,
            swapped_tokens: 0,
            phase_switches: 1,
            mean_utilization: 0.5,
            latency: None,
        };
        let snap = m.finish(
            &report,
            AllocStats::default(),
            100,
            &Timeline::new(false),
            PlaneStats::default(),
        );
        assert_eq!(snap.scalar("session_kv_retains_total"), Some(10.0));
        assert_eq!(snap.scalar("session_reuse_hits_total"), Some(7.0));
        assert_eq!(snap.scalar("session_reuse_misses_total"), Some(2.0));
        assert_eq!(snap.scalar("session_kv_drops_total"), Some(3.0));
        assert_eq!(snap.scalar("session_reused_tokens_total"), Some(1400.0));
        assert_eq!(
            snap.scalar("session_retained_blocks_high_water"),
            Some(55.0)
        );
    }
}
