//! Algorithm 1: the AI-based greedy prefill switch (paper §3.3).
//!
//! The planner simulates future KV usage at a grid of `futurePoints` —
//! decode-step offsets from the moment the decode phase will start. A
//! request with resident tokens `c` and predicted remaining output `p`
//! contributes `c + fp` tokens at future point `fp` if `fp ≤ p` and nothing
//! otherwise (by then it is predicted to have finished and freed its KV).
//! Prefill keeps going while the simulated peak stays within capacity —
//! that is what lets TD-Pipe start decode phases with far fuller memory
//! than a naive "stop at X% occupancy" rule, without overflowing later.

use crate::request::RequestState;

/// The future-usage simulator behind Algorithm 1.
///
/// ```
/// use tdpipe_core::greedy::GreedyPrefillPlanner;
///
/// let mut planner = GreedyPrefillPlanner::new(vec![32, 64, 128], 10_000);
/// assert!(!planner.would_overflow());
/// assert_eq!(planner.token_capacity(), 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct GreedyPrefillPlanner {
    /// Future decode-step offsets (e.g. 32, 64, …, 1024).
    future_points: Vec<u32>,
    /// Predicted resident tokens at each future point.
    usage: Vec<u64>,
    /// Token capacity of the KV pool.
    token_capacity: u64,
}

impl GreedyPrefillPlanner {
    /// A planner for the given `futurePoints` grid and pool capacity.
    ///
    /// # Panics
    /// Panics if the grid is empty or unsorted.
    pub fn new(future_points: Vec<u32>, token_capacity: u64) -> Self {
        assert!(!future_points.is_empty(), "need at least one future point");
        assert!(
            future_points.windows(2).all(|w| w[0] < w[1]),
            "future points must be strictly increasing"
        );
        let n = future_points.len();
        GreedyPrefillPlanner {
            future_points,
            usage: vec![0; n],
            token_capacity,
        }
    }

    /// Reset for a new prefill phase: seed usage with the requests already
    /// resident (mid-decode) in memory.
    pub fn reset<'a, I: IntoIterator<Item = &'a RequestState>>(&mut self, residents: I) {
        self.usage.iter_mut().for_each(|u| *u = 0);
        for r in residents {
            self.account(r.resident_tokens(), r.predicted_remaining());
        }
    }

    /// Algorithm 1's `UpdateUsage`: account one just-launched prefill.
    pub fn add_request(&mut self, state: &RequestState) {
        self.account(state.prefill_tokens() as u64, state.predicted_remaining());
    }

    fn account(&mut self, current_tokens: u64, predicted_remaining: u32) {
        // The grid is strictly increasing, so the points this request is
        // still alive at form a prefix — find its end by bisection and
        // update only that prefix (runs once per admitted request).
        let live = self
            .future_points
            .partition_point(|&fp| fp <= predicted_remaining);
        for (u, &fp) in self.usage[..live].iter_mut().zip(&self.future_points[..live]) {
            *u += current_tokens + fp as u64;
        }
    }

    /// Algorithm 1's `CheckSwitch`: `true` when the simulated peak usage
    /// exceeds capacity — time to switch to decode.
    pub fn would_overflow(&self) -> bool {
        self.peak_usage() > self.token_capacity
    }

    /// The simulated peak across future points.
    pub fn peak_usage(&self) -> u64 {
        self.usage.iter().copied().max().unwrap_or(0)
    }

    /// Capacity the planner guards.
    #[inline]
    pub fn token_capacity(&self) -> u64 {
        self.token_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Lifecycle;
    use tdpipe_workload::RequestId;

    fn req(input: u32, generated: u32, predicted: u32) -> RequestState {
        RequestState {
            id: RequestId(0),
            input_len: input,
            output_len: predicted, // irrelevant here
            predicted,
            generated,
            lifecycle: Lifecycle::Decoding,
            evictions: 0,
            swapped: false,
            arrival: 0.0,
            first_token_at: f64::NAN,
            finished_at: f64::NAN,
        }
    }

    fn planner(cap: u64) -> GreedyPrefillPlanner {
        GreedyPrefillPlanner::new(vec![32, 64, 128, 256], cap)
    }

    #[test]
    fn short_outputs_free_memory_at_later_points() {
        let mut p = planner(1_000_000);
        // Predicted 50 output tokens: present at fp=32, gone at fp=64+.
        p.add_request(&req(100, 0, 50));
        assert_eq!(p.peak_usage(), 100 + 32);
        // A long request dominates later points.
        p.add_request(&req(200, 0, 300));
        // fp=32: 132 + 232 = 364; fp=256: 200 + 256 = 456 dominates.
        assert_eq!(p.peak_usage(), 456);
    }

    #[test]
    fn overflow_triggers_exactly_at_capacity_boundary() {
        let mut p = planner(164);
        p.add_request(&req(100, 0, 64));
        // usage at fp=32 → 132; fp=64 → 164. Capacity 164: not exceeded.
        assert!(!p.would_overflow());
        let mut p2 = planner(163);
        p2.add_request(&req(100, 0, 64));
        assert!(p2.would_overflow());
    }

    #[test]
    fn aggressive_admission_beats_fixed_threshold() {
        // The point of Algorithm 1: many short-output requests can be
        // admitted far past a naive occupancy threshold because they free
        // KV during decode.
        let cap = 10_000u64;
        let mut p = planner(cap);
        let mut admitted_tokens = 0u64;
        let mut n = 0;
        loop {
            let r = req(100, 0, 20); // present only at fp ≤ 20 → never at 32!
            p.add_request(&r);
            if p.would_overflow() {
                break;
            }
            admitted_tokens += 100;
            n += 1;
            if n > 10_000 {
                break;
            }
        }
        // Requests predicted to finish before the first future point never
        // register usage — admission is limited by actual allocation, not
        // the planner. (The allocator backstops reality.)
        assert!(admitted_tokens > cap, "planner should allow oversubscription of short requests");
    }

    #[test]
    fn reset_seeds_residents() {
        let mut p = planner(1_000);
        let residents = [req(100, 40, 100)]; // 140 resident, 60 remaining
        p.reset(residents.iter());
        // fp=32 ≤ 60: 140 + 32 = 172; fp=64 > 60: 0.
        assert_eq!(p.peak_usage(), 172);
        p.reset(std::iter::empty());
        assert_eq!(p.peak_usage(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_grid_panics() {
        GreedyPrefillPlanner::new(vec![64, 32], 10);
    }
}
