//! Algorithm 1: the AI-based greedy prefill switch (paper §3.3).
//!
//! The planner simulates future KV usage at a grid of `futurePoints` —
//! decode-step offsets from the moment the decode phase will start. A
//! request with resident tokens `c` and predicted remaining output `p`
//! contributes `c + fp` tokens at future point `fp` if `fp ≤ p` and nothing
//! otherwise (by then it is predicted to have finished and freed its KV).
//! Prefill keeps going while the simulated peak stays within capacity —
//! that is what lets TD-Pipe start decode phases with far fuller memory
//! than a naive "stop at X% occupancy" rule, without overflowing later.
//!
//! The planner is **incremental**: it tracks each admitted request's exact
//! contribution, so finishing/evicting a request ([`GreedyPrefillPlanner::
//! remove_request`]) or advancing it by a batch of decode steps
//! ([`GreedyPrefillPlanner::advance`]) costs O(futurePoints) — phase
//! re-seeding is O(changes), not O(residents × futurePoints). All
//! arithmetic is exact `u64` adds/subtracts, so the incremental state is
//! bit-identical to a from-scratch rebuild (the equivalence proptest and a
//! debug assertion in the engine both pin this).

/// The future-usage simulator behind Algorithm 1.
///
/// ```
/// use tdpipe_core::greedy::GreedyPrefillPlanner;
///
/// let mut planner = GreedyPrefillPlanner::new(vec![32, 64, 128], 10_000);
/// assert!(!planner.would_overflow());
/// assert_eq!(planner.token_capacity(), 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct GreedyPrefillPlanner {
    /// Future decode-step offsets (e.g. 32, 64, …, 1024).
    future_points: Vec<u32>,
    /// Predicted resident tokens at each future point.
    usage: Vec<u64>,
    /// Token capacity of the KV pool.
    token_capacity: u64,
    /// Per-request tracked contribution, id-indexed: `(current_tokens,
    /// predicted_remaining)` exactly as accounted into `usage`. `None` for
    /// requests the planner is not currently tracking.
    tracked: Vec<Option<(u64, u32)>>,
}

impl GreedyPrefillPlanner {
    /// A planner for the given `futurePoints` grid and pool capacity.
    ///
    /// # Panics
    /// Panics if the grid is empty or unsorted.
    pub fn new(future_points: Vec<u32>, token_capacity: u64) -> Self {
        assert!(!future_points.is_empty(), "need at least one future point");
        assert!(
            future_points.windows(2).all(|w| w[0] < w[1]),
            "future points must be strictly increasing"
        );
        let n = future_points.len();
        GreedyPrefillPlanner {
            future_points,
            usage: vec![0; n],
            token_capacity,
            tracked: Vec::new(),
        }
    }

    /// Pre-size the tracking table for `n` request ids so admission never
    /// grows it mid-run.
    pub fn reserve_ids(&mut self, n: usize) {
        if self.tracked.len() < n {
            self.tracked.resize(n, None);
        }
    }

    /// Forget every tracked request and zero the usage grid.
    pub fn clear(&mut self) {
        self.usage.iter_mut().for_each(|u| *u = 0);
        self.tracked.iter_mut().for_each(|t| *t = None);
    }

    /// Algorithm 1's `UpdateUsage`: account one just-admitted request with
    /// `current_tokens` of resident KV and `predicted_remaining` output
    /// tokens still expected.
    ///
    /// # Panics
    /// Panics (debug) if `id` is already tracked — remove it first.
    pub fn admit(&mut self, id: usize, current_tokens: u64, predicted_remaining: u32) {
        if self.tracked.len() <= id {
            self.tracked.resize(id + 1, None);
        }
        debug_assert!(self.tracked[id].is_none(), "request {id} already tracked");
        self.tracked[id] = Some((current_tokens, predicted_remaining));
        let live = self.live_prefix(predicted_remaining);
        for (u, &fp) in self.usage[..live].iter_mut().zip(&self.future_points[..live]) {
            *u += current_tokens + fp as u64;
        }
    }

    /// Remove a tracked request (it finished, or was evicted/swapped out):
    /// its exact stored contribution is subtracted, so `usage` returns to
    /// the state it would have had without the request. No settling is
    /// required first — the stored `(c, p)` pair is whatever was last
    /// admitted/advanced, and that is exactly what was accounted.
    pub fn remove_request(&mut self, id: usize) {
        let (c, p) = self.tracked[id].take().unwrap_or_else(|| {
            // analyzer: allow(no-panic) — planner misuse is an engine bug;
            // the debug-assert oracle in the engine catches drift earlier.
            panic!("removing untracked request {id}")
        });
        let live = self.live_prefix(p);
        for (u, &fp) in self.usage[..live].iter_mut().zip(&self.future_points[..live]) {
            *u -= c + fp as u64;
        }
    }

    /// Advance a tracked request by `steps` decode steps: its resident
    /// tokens grow by `steps` and its predicted remaining output shrinks
    /// (saturating). Cost is O(live future points), and saturating-sub
    /// chains compose, so advancing by `a` then `b` equals advancing by
    /// `a + b`.
    pub fn advance(&mut self, id: usize, steps: u32) {
        if steps == 0 {
            return;
        }
        let Some((c, p)) = self.tracked[id] else {
            // analyzer: allow(no-panic) — planner misuse is an engine bug;
            // the debug-assert oracle in the engine catches drift earlier.
            panic!("advancing untracked request {id}")
        };
        let new_p = p.saturating_sub(steps);
        let new_c = c + steps as u64;
        self.tracked[id] = Some((new_c, new_p));
        let live_old = self.live_prefix(p);
        let live_new = self.live_prefix(new_p);
        debug_assert!(live_new <= live_old);
        // Still-live points: contribution goes from c + fp to c' + fp.
        for u in &mut self.usage[..live_new] {
            *u += steps as u64;
        }
        // Points the request is now predicted to have finished by: its old
        // contribution leaves entirely.
        for (u, &fp) in self.usage[live_new..live_old]
            .iter_mut()
            .zip(&self.future_points[live_new..live_old])
        {
            *u -= c + fp as u64;
        }
    }

    /// The future points a request with `predicted_remaining` output is
    /// still alive at form a prefix of the (strictly increasing) grid.
    #[inline]
    fn live_prefix(&self, predicted_remaining: u32) -> usize {
        self.future_points
            .partition_point(|&fp| fp <= predicted_remaining)
    }

    /// Algorithm 1's `CheckSwitch`: `true` when the simulated peak usage
    /// exceeds capacity — time to switch to decode.
    pub fn would_overflow(&self) -> bool {
        self.peak_usage() > self.token_capacity
    }

    /// The simulated peak across future points.
    pub fn peak_usage(&self) -> u64 {
        self.usage.iter().copied().max().unwrap_or(0)
    }

    /// The usage grid itself (one entry per future point) — exposed so
    /// tests and the engine's debug oracle can compare incremental state
    /// against a from-scratch rebuild.
    #[inline]
    pub fn usage(&self) -> &[u64] {
        &self.usage
    }

    /// Capacity the planner guards.
    #[inline]
    pub fn token_capacity(&self) -> u64 {
        self.token_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner(cap: u64) -> GreedyPrefillPlanner {
        GreedyPrefillPlanner::new(vec![32, 64, 128, 256], cap)
    }

    #[test]
    fn short_outputs_free_memory_at_later_points() {
        let mut p = planner(1_000_000);
        // Predicted 50 output tokens: present at fp=32, gone at fp=64+.
        p.admit(0, 100, 50);
        assert_eq!(p.peak_usage(), 100 + 32);
        // A long request dominates later points.
        p.admit(1, 200, 300);
        // fp=32: 132 + 232 = 364; fp=256: 200 + 256 = 456 dominates.
        assert_eq!(p.peak_usage(), 456);
    }

    #[test]
    fn overflow_triggers_exactly_at_capacity_boundary() {
        let mut p = planner(164);
        p.admit(0, 100, 64);
        // usage at fp=32 → 132; fp=64 → 164. Capacity 164: not exceeded.
        assert!(!p.would_overflow());
        let mut p2 = planner(163);
        p2.admit(0, 100, 64);
        assert!(p2.would_overflow());
    }

    #[test]
    fn aggressive_admission_beats_fixed_threshold() {
        // The point of Algorithm 1: many short-output requests can be
        // admitted far past a naive occupancy threshold because they free
        // KV during decode.
        let cap = 10_000u64;
        let mut p = planner(cap);
        let mut admitted_tokens = 0u64;
        let mut n = 0usize;
        loop {
            p.admit(n, 100, 20); // present only at fp ≤ 20 → never at 32!
            if p.would_overflow() {
                break;
            }
            admitted_tokens += 100;
            n += 1;
            if n > 10_000 {
                break;
            }
        }
        // Requests predicted to finish before the first future point never
        // register usage — admission is limited by actual allocation, not
        // the planner. (The allocator backstops reality.)
        assert!(admitted_tokens > cap, "planner should allow oversubscription of short requests");
    }

    #[test]
    fn remove_restores_prior_state() {
        let mut p = planner(1_000);
        p.admit(0, 140, 60);
        // fp=32 ≤ 60: 140 + 32 = 172; fp=64 > 60: 0.
        assert_eq!(p.peak_usage(), 172);
        p.admit(1, 50, 500);
        p.remove_request(1);
        assert_eq!(p.peak_usage(), 172);
        p.remove_request(0);
        assert_eq!(p.peak_usage(), 0);
    }

    #[test]
    fn advance_matches_readmission() {
        let mut a = planner(u64::MAX);
        a.admit(0, 140, 100);
        a.advance(0, 40);
        // Equivalent from-scratch: 180 resident, 60 remaining.
        let mut b = planner(u64::MAX);
        b.admit(0, 180, 60);
        assert_eq!(a.usage(), b.usage());
        // Saturating: advancing past the prediction zeroes the request's
        // live prefix but keeps counting its resident tokens growth path.
        a.advance(0, 100);
        let mut c = planner(u64::MAX);
        c.admit(0, 280, 0);
        assert_eq!(a.usage(), c.usage());
    }

    #[test]
    fn advance_composes() {
        let mut a = planner(u64::MAX);
        a.admit(7, 300, 200);
        a.advance(7, 30);
        a.advance(7, 50);
        let mut b = planner(u64::MAX);
        b.admit(7, 300, 200);
        b.advance(7, 80);
        assert_eq!(a.usage(), b.usage());
    }

    #[test]
    fn clear_empties_everything() {
        let mut p = planner(1_000);
        p.admit(0, 100, 40);
        p.admit(1, 100, 400);
        p.clear();
        assert_eq!(p.peak_usage(), 0);
        // Ids are re-admittable after a clear.
        p.admit(0, 10, 33);
        assert_eq!(p.peak_usage(), 42);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_grid_panics() {
        GreedyPrefillPlanner::new(vec![64, 32], 10);
    }
}
