//! Inter-batch work stealing (paper §3.4).
//!
//! During the decode phase, requests complete at random, so the `n`
//! in-flight batches drift apart in size — and, because decode steps of
//! one batch must run back-to-back, the *largest* batch paces the pipeline
//! while smaller batches leave bubbles. The stealer rebalances on the fly:
//!
//! * a sliding window (length = number of batches) tracks the most recent
//!   submitted batch sizes;
//! * when a batch returns, the engine removes its finished requests and
//!   hands it to the stealer with the number just finished;
//! * the target size is `(window_sum − finished_now) / window_len`
//!   (integer floor, exactly the arithmetic of the paper's Fig. 9 walk-
//!   through);
//! * over-target batches have their excess *withheld* into a pool;
//!   under-target batches are topped up from the pool.

use std::collections::VecDeque;

/// What one [`WorkStealer::rebalance`] call did — the numbers the flight
/// recorder journals as `StealWithhold`/`StealSupplement` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RebalanceOutcome {
    /// The sliding-window target the batch was balanced toward.
    pub target: usize,
    /// Requests moved from the batch into the withheld pool.
    pub withheld: usize,
    /// Requests moved from the withheld pool into the batch.
    pub supplemented: usize,
}

/// The sliding-window work stealer.
///
/// ```
/// use tdpipe_core::steal::WorkStealer;
///
/// let mut stealer = WorkStealer::new(&[128, 128]);
/// let mut heavy: Vec<usize> = (0..128).collect();
/// // 60 requests of the other batch finished: this batch is now over the
/// // sliding-window target and gets trimmed.
/// stealer.on_batch_return(&mut heavy, 60);
/// assert!(heavy.len() < 128);
/// assert!(!stealer.withheld().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct WorkStealer {
    window: VecDeque<usize>,
    withheld: Vec<usize>,
}

impl WorkStealer {
    /// Start a decode phase with the given initial batch sizes (the window
    /// seeds from them; paper Fig. 9 starts from `[128, 128, 128, 128]`).
    pub fn new(initial_sizes: &[usize]) -> Self {
        assert!(!initial_sizes.is_empty(), "need at least one batch");
        WorkStealer {
            window: initial_sizes.iter().copied().collect(),
            withheld: Vec::new(),
        }
    }

    /// Re-seed for a new decode phase, reusing the window and pool
    /// storage (capacity survives, so the steady-state engine allocates
    /// nothing per phase switch).
    ///
    /// # Panics
    /// Panics if `initial_sizes` is empty.
    pub fn reset(&mut self, initial_sizes: &[usize]) {
        assert!(!initial_sizes.is_empty(), "need at least one batch");
        self.window.clear();
        self.window.extend(initial_sizes.iter().copied());
        self.withheld.clear();
    }

    /// Rebalance a returned batch. `members` must already have finished
    /// requests removed; `finished_now` is how many were just removed.
    ///
    /// Over-average members are moved into the withheld pool (newest last —
    /// the tail of `members` is withheld first); under-average batches are
    /// topped up from the pool. The submitted size is recorded in the
    /// window.
    pub fn on_batch_return(&mut self, members: &mut Vec<usize>, finished_now: usize) {
        self.rebalance(members, finished_now, &mut 0, |_| 0);
    }

    /// [`Self::on_batch_return`] that also keeps the batch's running
    /// context-token total `ctx` consistent as members move: withheld
    /// members subtract their resident tokens, supplements add theirs.
    /// This is what lets the engine maintain `total_ctx` incrementally
    /// instead of rescanning the batch every decode step.
    ///
    /// Returns what moved (for the flight recorder); callers that only
    /// want the side effect ignore it.
    pub fn rebalance(
        &mut self,
        members: &mut Vec<usize>,
        finished_now: usize,
        ctx: &mut u64,
        resident: impl Fn(usize) -> u64,
    ) -> RebalanceOutcome {
        // The withheld pool is live work too — counting it in the target is
        // what drains the pool back into light batches instead of letting
        // stolen requests linger.
        let sum: usize = self.window.iter().sum::<usize>() + self.withheld.len();
        // Floor the target at 1: stealing a live batch to zero would retire
        // it from the pipeline entirely, which is never a balance win.
        let target = (sum.saturating_sub(finished_now) / self.window.len()).max(1);
        let mut outcome = RebalanceOutcome {
            target,
            ..RebalanceOutcome::default()
        };
        if members.len() > target {
            for &m in &members[target..] {
                *ctx -= resident(m);
            }
            let excess = members.split_off(target);
            outcome.withheld = excess.len();
            self.withheld.extend(excess);
        } else if members.len() < target && !self.withheld.is_empty() {
            let need = (target - members.len()).min(self.withheld.len());
            let from = self.withheld.len() - need;
            for &m in &self.withheld[from..] {
                *ctx += resident(m);
            }
            members.extend(self.withheld.drain(from..));
            outcome.supplemented = need;
        }
        self.window.pop_front();
        self.window.push_back(members.len());
        outcome
    }

    /// Requests currently withheld (waiting to supplement a light batch).
    #[inline]
    pub fn withheld(&self) -> &[usize] {
        &self.withheld
    }

    /// Drain the withheld pool (end of the decode phase: the requests are
    /// re-partitioned with everything else at the next phase switch).
    pub fn drain(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.withheld)
    }

    /// Move the withheld pool into `out` without giving up this stealer's
    /// buffer capacity (the last live batch absorbs strays this way).
    pub fn take_withheld_into(&mut self, out: &mut Vec<usize>) {
        out.extend_from_slice(&self.withheld);
        self.withheld.clear();
    }

    /// Current sliding-window target batch size: exactly what
    /// [`Self::rebalance`] would enforce right now with no freshly
    /// finished requests — the withheld pool counts as live work and the
    /// target never drops below 1.
    pub fn current_target(&self) -> usize {
        ((self.window.iter().sum::<usize>() + self.withheld.len()) / self.window.len()).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replays the walk-through of the paper's Figure 9.
    #[test]
    fn fig9_walkthrough() {
        // 512 requests, 4 batches of 128.
        let mut s = WorkStealer::new(&[128, 128, 128, 128]);

        // Batch 0 returns: 48 finished, 80 left. Avg = (512-48)/4 = 116.
        // 80 < 116 and the pool is empty → submit all 80.
        let mut b0: Vec<usize> = (0..80).collect();
        s.on_batch_return(&mut b0, 48);
        assert_eq!(b0.len(), 80);
        assert!(s.withheld().is_empty());

        // Batch 1 returns: 8 finished, 120 left.
        // Avg = (80+128+128+128-8)/4 = 114 → steal 6, submit 114.
        let mut b1: Vec<usize> = (100..220).collect();
        s.on_batch_return(&mut b1, 8);
        assert_eq!(b1.len(), 114);
        assert_eq!(s.withheld().len(), 6);

        // Batch 2 returns: none finished, 128 left. Our target counts the
        // withheld pool (required for the pool to drain; Fig. 9's prose
        // omits it): (128+80+114+128 + 6)/4 = 114 → steal 14.
        let mut b2: Vec<usize> = (300..428).collect();
        s.on_batch_return(&mut b2, 0);
        assert_eq!(b2.len(), 114);
        assert_eq!(s.withheld().len(), 6 + 14);

        // Batch 3 returns: none finished, 128 left.
        // (80+114+114+128 + 20)/4 = 114 → steal 14.
        let mut b3: Vec<usize> = (500..628).collect();
        s.on_batch_return(&mut b3, 0);
        assert_eq!(b3.len(), 114);
        assert_eq!(s.withheld().len(), 34);

        // Batch 0 comes around again: (114+114+114+80 + 34)/4 = 114 — the
        // light batch absorbs the whole pool, balancing all four batches.
        let mut b0_again = b0;
        s.on_batch_return(&mut b0_again, 0);
        assert_eq!(b0_again.len(), 114);
        assert!(s.withheld().is_empty());
    }

    #[test]
    fn stealing_conserves_requests() {
        let mut s = WorkStealer::new(&[10, 10, 10]);
        let mut batches: Vec<Vec<usize>> = vec![
            (0..10).collect(),
            (10..20).collect(),
            (20..30).collect(),
        ];
        // Simulate uneven completion for a few rounds.
        let mut alive: Vec<usize> = (0..30).collect();
        for round in 0..20 {
            for b in batches.iter_mut() {
                // "Finish" the first request of this batch on even rounds.
                let finished = if round % 2 == 0 && !b.is_empty() {
                    let gone = b.remove(0);
                    alive.retain(|&x| x != gone);
                    1
                } else {
                    0
                };
                s.on_batch_return(b, finished);
            }
            // Conservation: batches + withheld == alive, no duplicates.
            let mut all: Vec<usize> = batches.iter().flatten().copied().collect();
            all.extend(s.withheld());
            all.sort_unstable();
            let mut expect = alive.clone();
            expect.sort_unstable();
            assert_eq!(all, expect, "round {round}");
        }
    }

    #[test]
    fn converges_toward_balance() {
        // Start wildly imbalanced; with no completions the spread must
        // shrink to ≤ 1 within a few rounds.
        let mut s = WorkStealer::new(&[200, 10, 10, 10]);
        let mut batches: Vec<Vec<usize>> = vec![
            (0..200).collect(),
            (200..210).collect(),
            (210..220).collect(),
            (220..230).collect(),
        ];
        for _ in 0..6 {
            for b in batches.iter_mut() {
                s.on_batch_return(b, 0);
            }
        }
        let sizes: Vec<usize> = batches.iter().map(|b| b.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        let withheld = s.withheld().len();
        assert!(
            max - min <= 2 && withheld <= 4,
            "not balanced: {sizes:?} withheld={withheld}"
        );
    }

    #[test]
    fn current_target_pins_the_rebalance_formula() {
        // Build a state with a non-empty withheld pool so the formula's
        // pool term is observable.
        let mut s = WorkStealer::new(&[128, 128]);
        let mut heavy: Vec<usize> = (0..128).collect();
        s.on_batch_return(&mut heavy, 60);
        assert!(!s.withheld().is_empty(), "setup must withhold something");
        // The advertised target is (window_sum + withheld) / len, floored
        // at 1 — the exact arithmetic `rebalance` applies with
        // finished_now = 0 (window now holds [128, heavy.len()]).
        let expect = ((128 + heavy.len() + s.withheld().len()) / 2).max(1);
        assert_eq!(s.current_target(), expect);
        // And it predicts what rebalancing actually enforces: a large
        // returning batch is trimmed to exactly this target.
        let advertised = s.current_target();
        let mut big: Vec<usize> = (1000..1300).collect();
        s.on_batch_return(&mut big, 0);
        assert_eq!(big.len(), advertised);
    }

    #[test]
    fn current_target_never_reports_zero() {
        // All-empty window: rebalance floors the target at 1, and the
        // observable target must agree instead of reporting 0.
        let s = WorkStealer::new(&[0, 0, 0]);
        assert_eq!(s.current_target(), 1);
    }

    #[test]
    fn rebalance_outcome_reports_the_moves() {
        let mut s = WorkStealer::new(&[128, 128]);
        // Over-target return: the excess shows up as `withheld`.
        let mut heavy: Vec<usize> = (0..128).collect();
        let o = s.rebalance(&mut heavy, 60, &mut 0, |_| 0);
        assert_eq!(o.withheld, 128 - o.target);
        assert_eq!(o.supplemented, 0);
        assert_eq!(o.withheld, s.withheld().len());
        // Under-target return: the top-up shows up as `supplemented`.
        let mut light: Vec<usize> = (200..204).collect();
        let before = light.len();
        let o2 = s.rebalance(&mut light, 0, &mut 0, |_| 0);
        assert_eq!(o2.withheld, 0);
        assert_eq!(o2.supplemented, light.len() - before);
        assert!(o2.supplemented > 0, "pool had stock to hand out");
    }

    #[test]
    fn reset_matches_fresh_stealer() {
        let mut used = WorkStealer::new(&[4, 4]);
        let mut big: Vec<usize> = (0..10).collect();
        used.on_batch_return(&mut big, 0);
        assert!(!used.withheld().is_empty());
        used.reset(&[7, 9, 3]);
        let fresh = WorkStealer::new(&[7, 9, 3]);
        assert_eq!(used.current_target(), fresh.current_target());
        assert!(used.withheld().is_empty());
        let mut a: Vec<usize> = (0..20).collect();
        let mut b = a.clone();
        let mut u = used;
        let mut f = fresh;
        let oa = u.rebalance(&mut a, 1, &mut 0, |_| 0);
        let ob = f.rebalance(&mut b, 1, &mut 0, |_| 0);
        assert_eq!(oa, ob);
        assert_eq!(a, b);
    }

    #[test]
    fn take_withheld_into_moves_the_pool() {
        let mut s = WorkStealer::new(&[4, 4]);
        let mut big: Vec<usize> = (0..10).collect();
        s.on_batch_return(&mut big, 0);
        let n = s.withheld().len();
        assert!(n > 0);
        let mut out = vec![99];
        s.take_withheld_into(&mut out);
        assert_eq!(out.len(), 1 + n);
        assert!(s.withheld().is_empty());
    }

    #[test]
    fn drain_returns_everything() {
        let mut s = WorkStealer::new(&[4, 4]);
        let mut big: Vec<usize> = (0..10).collect();
        s.on_batch_return(&mut big, 0);
        let pool = s.drain();
        assert_eq!(big.len() + pool.len(), 10);
        assert!(s.withheld().is_empty());
    }
}
