//! Event-driven decode cohorts: O(1) per decode step instead of O(batch).
//!
//! The decode inner loop is the simulator's hottest code: every time a
//! batch returns it used to walk every member to bump its generated-token
//! count, extend its KV residency by one token, and test for completion.
//! All three are *predictable the moment a member joins the batch*:
//!
//! * it generates exactly one token per step, so after `k` steps its
//!   pending state is just `k`;
//! * it finishes after exactly `output_len - generated` steps (the engine
//!   decodes to the request's actual length), so finishers can be filed
//!   under their finish epoch up front;
//! * holding `T` resident tokens at join epoch `e`, it crosses a KV block
//!   boundary exactly on epochs `s ≡ e + 1 - T (mod block_size)` — a
//!   fixed residue of the step counter.
//!
//! A [`DecodeCohort`] therefore banks a whole batch's per-step work as
//! arithmetic: finishers drain from a per-epoch bucket, the batch's block
//! demand is one counter lookup feeding
//! `BlockAllocator::extend_cohort`-style aggregate accounting, and
//! per-member state (pool `generated`, allocator tokens, planner
//! advances) is materialised only when a member *leaves* — finish,
//! eviction, work-stealing move, or phase end — with `epoch − join_epoch`
//! pending steps. A quiet step touches zero members.
//!
//! Members that leave early invalidate their finish-bucket entry lazily:
//! [`CohortMembers`] keeps a per-request generation counter, bumped on
//! every leave, and stale `(member, generation)` entries are skipped when
//! their epoch drains. The shared [`CohortMembers`] arrays are indexed by
//! pool id so any number of cohorts (one per in-flight decode batch) can
//! share them.
//!
//! Bit-identity with the per-member loop is the design contract: every
//! counter is exact integer arithmetic, and every settle applies exactly
//! the increments the per-step loop would have applied. When KV memory
//! pressure makes eviction possible, callers either settle the whole
//! cohort and replay the step through the per-member loop (the TD
//! engine), or walk just the members growing a block this step —
//! [`DecodeCohort::member_grows`] — settling only the victims (the
//! PP+SB baseline); both reproduce the eviction schedule exactly.

/// Shared per-request bookkeeping for any number of [`DecodeCohort`]s,
/// indexed by pool id.
#[derive(Debug, Clone)]
pub struct CohortMembers {
    /// Epoch at which the request joined its current cohort;
    /// `u32::MAX` = not in any cohort (fully settled).
    join_epoch: Vec<u32>,
    /// Membership generation: bumped when the request leaves a cohort,
    /// invalidating its filed finish-bucket entry.
    gen: Vec<u32>,
    /// Block-growth residue class the request occupies in its cohort.
    class: Vec<u16>,
}

impl CohortMembers {
    /// Bookkeeping for a pool of `n` requests, all initially settled.
    pub fn new(n: usize) -> Self {
        CohortMembers {
            join_epoch: vec![u32::MAX; n],
            gen: vec![0; n],
            class: vec![0; n],
        }
    }

    /// Decode steps banked for `m` in a cohort currently at `epoch`
    /// (0 for a settled request) — what a settle would materialise.
    #[inline]
    pub fn pending(&self, m: usize, epoch: u32) -> u32 {
        let je = self.join_epoch[m];
        if je == u32::MAX {
            0
        } else {
            epoch - je
        }
    }

    /// Whether `m` is currently banked in some cohort.
    #[inline]
    pub fn in_cohort(&self, m: usize) -> bool {
        self.join_epoch[m] != u32::MAX
    }
}

/// One decode batch's event-driven step state (see the module docs).
#[derive(Debug, Clone)]
pub struct DecodeCohort {
    /// Steps this cohort has executed since its last reset.
    epoch: u32,
    block_size: u32,
    /// Live members per block-growth residue class; the members growing a
    /// block on epoch `s` are exactly class `s % block_size`.
    classes: Vec<u32>,
    /// `(member, generation)` entries filed under their finish epoch.
    buckets: Vec<Vec<(u32, u32)>>,
    /// Members currently banked in this cohort.
    live: usize,
}

impl DecodeCohort {
    /// An empty cohort for a pool with `block_size`-token KV blocks.
    ///
    /// # Panics
    /// Panics if `block_size == 0`.
    pub fn new(block_size: u32) -> Self {
        assert!(block_size > 0, "block size must be positive");
        DecodeCohort {
            epoch: 0,
            block_size,
            classes: vec![0; block_size as usize],
            buckets: Vec::new(),
            live: 0,
        }
    }

    /// Members currently banked.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Steps executed since the last reset.
    #[inline]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Forget all members and return to epoch 0. Callers settle (or
    /// [`leave`](Self::leave)) every member first — asserted via the live
    /// count in debug builds; entries still filed in finish buckets are
    /// cleared here, so no lazy invalidation debt survives a reset.
    pub fn reset(&mut self) {
        debug_assert_eq!(self.live, 0, "cohort reset with live members");
        debug_assert!(self.classes.iter().all(|&c| c == 0));
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.epoch = 0;
        self.live = 0;
        self.classes.fill(0);
    }

    /// Bank request `m` into this cohort: it currently holds
    /// `resident_tokens` KV tokens and will finish after exactly
    /// `remaining` more decode steps (`remaining >= 1`).
    pub fn join(&mut self, cm: &mut CohortMembers, m: usize, resident_tokens: u64, remaining: u32) {
        debug_assert!(remaining >= 1, "a decoding request has a token left");
        debug_assert!(!cm.in_cohort(m), "member already banked");
        debug_assert!(resident_tokens > 0, "resident members hold their prompt");
        let bs = self.block_size as u64;
        // Entering its first step the member holds `resident_tokens`; a
        // block grows on the step whose entering count is a multiple of
        // the block size, i.e. on epochs ≡ join + 1 − tokens (mod bs).
        let r = ((self.epoch as u64 + 1 + bs - resident_tokens % bs) % bs) as usize;
        self.classes[r] += 1;
        cm.class[m] = r as u16;
        cm.join_epoch[m] = self.epoch;
        let f = (self.epoch + remaining) as usize;
        if self.buckets.len() <= f {
            self.buckets.resize_with(f + 1, Vec::new);
        }
        self.buckets[f].push((m as u32, cm.gen[m]));
        self.live += 1;
    }

    /// Blocks the *next* step can demand (an upper bound: members
    /// finishing on it are still counted). The engines compare this
    /// against free blocks to decide fast path vs. per-member fallback.
    #[inline]
    pub fn next_grows(&self) -> u32 {
        self.classes[((self.epoch + 1) % self.block_size) as usize]
    }

    /// Advance the cohort by one decode step. Call
    /// [`drain_finishers`](Self::drain_finishers) next, then read
    /// [`step_grows`](Self::step_grows) for the survivors' block demand.
    #[inline]
    pub fn begin_step(&mut self) {
        self.epoch += 1;
    }

    /// Blocks the *current* step's survivors demand (finishers already
    /// drained do not extend on their finish step).
    #[inline]
    pub fn step_grows(&self) -> u32 {
        self.classes[(self.epoch % self.block_size) as usize]
    }

    /// Whether banked member `m` crosses a KV block boundary on the
    /// *current* epoch (call after [`begin_step`](Self::begin_step);
    /// meaningful only while `m` is banked in this cohort).
    #[inline]
    pub fn member_grows(&self, cm: &CohortMembers, m: usize) -> bool {
        cm.class[m] as u32 == self.epoch % self.block_size
    }

    /// Drain the members finishing on the current epoch into `out` as
    /// `(member, banked_extends)` pairs, where `banked_extends` counts the
    /// single-token KV extends to settle — the steps *before* the finish
    /// step, which frees instead of extending. Each drained member leaves
    /// the cohort (class removed, generation bumped, marked settled).
    pub fn drain_finishers(&mut self, cm: &mut CohortMembers, out: &mut Vec<(usize, u32)>) {
        out.clear();
        let Some(bucket) = self.buckets.get_mut(self.epoch as usize) else {
            return;
        };
        for (m, g) in bucket.drain(..) {
            let m = m as usize;
            if cm.gen[m] != g {
                continue; // left early; stale entry
            }
            let banked_extends = self.epoch - 1 - cm.join_epoch[m];
            self.classes[cm.class[m] as usize] -= 1;
            cm.gen[m] = cm.gen[m].wrapping_add(1);
            cm.join_epoch[m] = u32::MAX;
            self.live -= 1;
            out.push((m, banked_extends));
        }
    }

    /// Remove `m` from the cohort early (eviction, work-stealing move,
    /// phase end); returns its banked decode steps, which the caller
    /// settles into pool/allocator/planner state.
    pub fn leave(&mut self, cm: &mut CohortMembers, m: usize) -> u32 {
        debug_assert!(cm.in_cohort(m), "member not banked in a cohort");
        let pending = self.epoch - cm.join_epoch[m];
        self.classes[cm.class[m] as usize] -= 1;
        cm.gen[m] = cm.gen[m].wrapping_add(1);
        cm.join_epoch[m] = u32::MAX;
        self.live -= 1;
        pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdpipe_kvcache::BlockAllocator;

    /// Reference per-member state for the equivalence check.
    #[derive(Clone)]
    struct Member {
        tokens: u64,
        remaining: u32,
        generated: u64,
    }

    /// Drive a cohort and a naive per-member loop over the same schedule
    /// of joins/steps/leaves and assert every observable agrees.
    #[test]
    fn cohort_matches_per_member_loop() {
        let bs = 4u32;
        let mut coh = DecodeCohort::new(bs);
        let mut cm = CohortMembers::new(16);
        let mut fast = BlockAllocator::new(1000, bs);
        let mut slow = BlockAllocator::new(1000, bs);
        let mut naive: Vec<Option<Member>> = vec![None; 16];
        let mut finishers = Vec::new();

        // Deterministic "random" schedule: xorshift over join sizes.
        let mut rng = 0x9e3779b9u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut alive: Vec<usize> = Vec::new();
        for m in 0..8usize {
            let tokens = 1 + next() % 19;
            let remaining = 1 + (next() % 7) as u32;
            fast.allocate(m as u64, tokens).unwrap();
            slow.allocate(m as u64, tokens).unwrap();
            coh.join(&mut cm, m, tokens, remaining);
            naive[m] = Some(Member {
                tokens,
                remaining,
                generated: 0,
            });
            alive.push(m);
        }
        let mut settled_generated = vec![0u64; 16];
        for step in 0..64 {
            if alive.is_empty() {
                break;
            }
            // Occasionally pull a member out early (a steal/evict stand-in).
            if step % 5 == 3 && alive.len() > 1 {
                let m = alive.remove((next() % alive.len() as u64) as usize);
                let pending = coh.leave(&mut cm, m);
                fast.advance_tokens(m as u64, pending as u64);
                settled_generated[m] += pending as u64;
                let memb = naive[m].take().expect("alive member");
                assert_eq!(settled_generated[m], memb.generated, "settle drift");
                assert_eq!(fast.tokens_of(m as u64), slow.tokens_of(m as u64));
                // Release both copies so the pools keep matching.
                assert_eq!(fast.free(m as u64).unwrap(), slow.free(m as u64).unwrap());
                continue;
            }
            coh.begin_step();
            coh.drain_finishers(&mut cm, &mut finishers);
            // Naive side, in engine order: one token each, finishers free
            // first, then the surviving members extend.
            let mut naive_finished = Vec::new();
            alive.retain(|&m| {
                let memb = naive[m].as_mut().expect("alive member");
                memb.generated += 1;
                memb.remaining -= 1;
                if memb.remaining == 0 {
                    slow.free(m as u64).unwrap();
                    naive_finished.push(m);
                    false
                } else {
                    true
                }
            });
            for &m in &alive {
                slow.extend_one(m as u64).unwrap();
                naive[m].as_mut().expect("alive member").tokens += 1;
            }
            let mut fast_finished: Vec<usize> = Vec::new();
            for &(m, extends) in &finishers {
                fast.advance_tokens(m as u64, extends as u64);
                settled_generated[m] += extends as u64 + 1;
                let memb = naive[m].take().expect("finisher was alive");
                assert_eq!(settled_generated[m], memb.generated);
                assert_eq!(
                    fast.tokens_of(m as u64).unwrap(),
                    memb.tokens,
                    "finisher KV drift"
                );
                fast.free(m as u64).unwrap();
                fast_finished.push(m);
            }
            assert_eq!(fast_finished, naive_finished, "finish schedule drift");
            assert_eq!(coh.live(), alive.len());
            assert!(coh.step_grows() as u64 <= coh.live() as u64);
            fast.extend_cohort(coh.live() as u64, coh.step_grows() as u64);
            assert_eq!(fast.used_blocks(), slow.used_blocks(), "step {step}");
            assert_eq!(fast.resident_tokens(), slow.resident_tokens());
        }
        // Settle the stragglers and compare final per-id state.
        for &m in &alive {
            let pending = coh.leave(&mut cm, m);
            fast.advance_tokens(m as u64, pending as u64);
            assert_eq!(
                fast.tokens_of(m as u64).unwrap(),
                slow.tokens_of(m as u64).unwrap()
            );
        }
        assert_eq!(coh.live(), 0);
        assert_eq!(fast.stats(), slow.stats(), "fast={:?} slow={:?}", fast.stats(), slow.stats());
    }

    #[test]
    fn growth_classes_follow_block_boundaries() {
        // A member holding a full block grows on its very first step.
        let mut coh = DecodeCohort::new(4);
        let mut cm = CohortMembers::new(4);
        coh.join(&mut cm, 0, 8, 10); // 8 % 4 == 0: grows on step 1, 5, 9…
        coh.join(&mut cm, 1, 7, 10); // grows on step 2 (7→8 fills, 8 grows)…
        assert_eq!(coh.next_grows(), 1);
        coh.begin_step();
        assert_eq!(coh.step_grows(), 1);
        coh.begin_step();
        assert_eq!(coh.step_grows(), 1);
        coh.begin_step();
        assert_eq!(coh.step_grows(), 0);
        coh.begin_step();
        assert_eq!(coh.step_grows(), 0);
        coh.begin_step();
        assert_eq!(coh.step_grows(), 1); // step 5 ≡ 1 (mod 4) again
    }

    #[test]
    fn stale_bucket_entries_are_skipped() {
        let mut coh = DecodeCohort::new(4);
        let mut cm = CohortMembers::new(2);
        let mut out = Vec::new();
        coh.join(&mut cm, 0, 5, 1);
        coh.join(&mut cm, 1, 5, 1);
        assert_eq!(coh.leave(&mut cm, 0), 0);
        coh.begin_step();
        coh.drain_finishers(&mut cm, &mut out);
        assert_eq!(out, vec![(1, 0)]);
        assert_eq!(coh.live(), 0);
    }

    #[test]
    fn rejoin_after_leave_reindexes_cleanly() {
        let mut coh = DecodeCohort::new(4);
        let mut cm = CohortMembers::new(1);
        let mut out = Vec::new();
        coh.join(&mut cm, 0, 5, 3);
        coh.begin_step();
        coh.drain_finishers(&mut cm, &mut out);
        assert!(out.is_empty());
        assert_eq!(coh.leave(&mut cm, 0), 1);
        // Re-join with one step settled: finishes two steps later.
        coh.join(&mut cm, 0, 6, 2);
        coh.begin_step();
        coh.drain_finishers(&mut cm, &mut out);
        assert!(out.is_empty());
        coh.begin_step();
        coh.drain_finishers(&mut cm, &mut out);
        assert_eq!(out, vec![(0, 1)]);
    }

    #[test]
    fn reset_clears_buckets_and_epoch() {
        let mut coh = DecodeCohort::new(4);
        let mut cm = CohortMembers::new(1);
        coh.join(&mut cm, 0, 5, 7);
        coh.begin_step();
        coh.leave(&mut cm, 0);
        coh.reset();
        assert_eq!(coh.epoch(), 0);
        assert_eq!(coh.live(), 0);
        let mut out = Vec::new();
        // The old entry at epoch 7 must not resurface after a rejoin.
        coh.join(&mut cm, 0, 5, 9);
        for _ in 0..7 {
            coh.begin_step();
            coh.drain_finishers(&mut cm, &mut out);
            assert!(out.is_empty(), "stale finish entry resurfaced");
        }
    }
}
