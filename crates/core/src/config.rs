//! Engine configuration shared by TD-Pipe and the baselines, plus the
//! TD-Pipe-specific policy knobs the ablation studies sweep.

use serde::{Deserialize, Serialize};
use tdpipe_sim::TransferMode;

/// Scheduler-agnostic engine parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Inter-stage transfer semantics. Conventional pipeline executors
    /// (vLLM's NCCL send/recv) use [`TransferMode::Rendezvous`] — the
    /// default here; TD-Pipe's hierarchy-controller decouples scheduling
    /// from execution and overrides this to [`TransferMode::Async`]
    /// (see [`TdPipeConfig::default`]).
    pub transfer_mode: TransferMode,
    /// Paged-attention block size in tokens.
    pub block_size: u32,
    /// Per-GPU bytes reserved for activations/workspace (subtracted from
    /// the KV budget, like vLLM's `gpu_memory_utilization` headroom).
    pub mem_reserve_bytes: u64,
    /// Maximum tokens packed into one separate-batching prefill batch.
    pub prefill_token_budget: u32,
    /// Token budget per hybrid-batching iteration (chunked prefill).
    pub chunk_token_budget: u32,
    /// Fixed control-plane cost per scheduling iteration (batch assembly,
    /// launch RPCs).
    pub engine_overhead: f64,
    /// Per-sequence control-plane cost per iteration (sampling-result
    /// processing, detokenisation, scheduler bookkeeping — the Python-side
    /// work a vLLM-0.5.x engine does between steps).
    pub control_per_seq: f64,
    /// Whether the control plane is decoupled from execution. Conventional
    /// engines (`false`) serialise all iterations' CPU work on one thread
    /// *on the critical path*; TD-Pipe's hierarchy-controller (`true`)
    /// overlaps it with GPU execution (§3.2), leaving only
    /// `engine_overhead` visible per launch.
    pub decoupled_control: bool,
    /// Maximum concurrently running sequences per scheduler instance
    /// (vLLM's `max_num_seqs`; stock default 256 in 0.5.x — what the
    /// paper's baselines ran with). `None` removes the cap; TD-Pipe's
    /// scheduler sizes batches from memory alone.
    pub max_num_seqs: Option<usize>,
    /// Maximum micro-batches a pipeline-parallel baseline keeps in flight
    /// simultaneously. vLLM 0.5.x's virtual engines could overlap in
    /// principle, but its Python driver processed outputs synchronously
    /// between steps, so in practice only a shallow overlap was achieved —
    /// the root of the paper's finding that PP baselines trail even TP on
    /// PCIe. `1` = strictly serial; `>= num_stages` = an idealised fully
    /// pipelined executor (what TD-Pipe's hierarchy-controller achieves).
    pub pp_inflight_limit: usize,
    /// Fraction of the *ideal* compute/memory overlap a fused hybrid
    /// (chunked-prefill + decode) iteration achieves. 1.0 = the chunk's
    /// compute hides perfectly under the decode's memory streaming;
    /// 0.0 = the two parts serialise (separate attention kernels, mixed
    /// batches falling off the paged-decode fast path). Real engines sit
    /// in between.
    pub hybrid_overlap: f64,
    /// Fraction of KV blocks kept free as admission watermark during
    /// prefill (guards against immediate thrashing).
    pub watermark: f64,
    /// Whether the pipeline simulator records per-segment timelines
    /// (needed for utilization-in-window and Gantt exports; costs memory).
    pub record_timeline: bool,
    /// Whether the engine samples the KV-occupancy trace (Fig. 12's data:
    /// one sample per prefill-batch completion and per decode-batch
    /// return). On by default to preserve figure artifacts; turn off for
    /// multi-million-request runs where the unbounded sample log is the
    /// largest allocation in the engine.
    pub record_occupancy: bool,
    /// Whether the scheduling flight recorder keeps a structured decision
    /// journal (`tdpipe-trace`). Off by default: a disabled recorder is a
    /// single-branch no-op, so default runs stay bit-identical. Enable
    /// together with [`EngineConfig::record_timeline`] to get device
    /// tracks in the Chrome-trace export.
    pub record_trace: bool,
    /// Whether the engine maintains the deterministic metrics plane
    /// (`tdpipe-metrics`): typed counters/gauges/histograms plus the
    /// virtual-time series sampler. Off by default: a disabled registry is
    /// a single-branch no-op per update, so default runs stay
    /// bit-identical. A `true` run is a pure observer — the schedule and
    /// report are unchanged (pinned in `tests/metrics_export.rs`).
    pub record_metrics: bool,
    /// Session-affine KV reuse across closed-loop turns (see
    /// `TdPipeEngine::run_sessions`): when `true`, a finished turn's KV is
    /// retained for its session's next turn under the
    /// [`EngineConfig::session_retain_frac`] budget, and a resumed turn
    /// whose retained prefix survived prefills only its fresh suffix. When
    /// `false`, every turn pays a full prefill. Has no effect on
    /// non-session runs — their artifacts stay bit-identical either way.
    pub session_reuse: bool,
    /// Fraction of the KV pool that retained (idle-session) blocks may
    /// occupy. Retained blocks are reclaimed oldest-first when the budget
    /// or live admissions need the memory.
    pub session_retain_frac: f64,
    /// Overflow strategy during decode.
    pub preemption: PreemptionMode,
    /// Effective host-link bandwidth for KV swapping, bytes/s (only used
    /// by [`PreemptionMode::Swap`]).
    pub host_link_bw: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            transfer_mode: TransferMode::Rendezvous,
            block_size: 16,
            mem_reserve_bytes: 2 * (1 << 30),
            prefill_token_budget: 4096,
            chunk_token_budget: 512,
            engine_overhead: 1.0e-3,
            control_per_seq: 30.0e-6,
            decoupled_control: false,
            max_num_seqs: Some(1024),
            pp_inflight_limit: 2,
            hybrid_overlap: 0.55,
            watermark: 0.01,
            record_timeline: false,
            record_occupancy: true,
            record_trace: false,
            record_metrics: false,
            session_reuse: true,
            session_retain_frac: 0.5,
            preemption: PreemptionMode::Recompute,
            host_link_bw: 20.0e9,
        }
    }
}

/// What to do with a resident request when the KV pool overflows
/// mid-decode (§3.3 names both options: "frequent re-computation or
/// offloading").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PreemptionMode {
    /// Free the KV and re-prefill prompt+generated later (the paper's
    /// §4.1 choice; wastes compute, no PCIe traffic).
    Recompute,
    /// Swap the KV to host memory and stream it back on re-admission
    /// (saves compute, pays the host link both ways).
    Swap,
}

/// Prefill→decode switch policy (paper §3.3 / Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum P2dPolicy {
    /// Algorithm 1: AI-based greedy prefill with future-KV simulation.
    Greedy,
    /// Ablation: switch once the KV occupancy ratio reaches a fixed
    /// threshold in `(0, 1]` (the "KV cache occupancy ratio"
    /// hyper-parameter of §4.4.1).
    FixedOccupancy(f64),
}

/// Decode→prefill switch policy (paper §3.5 / Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum D2pPolicy {
    /// Spatial-temporal intensity comparison.
    Intensity,
    /// Ablation: switch once a fixed fraction of the decode phase's
    /// starting requests have finished (the "request finish ratio"
    /// hyper-parameter of §4.4.3).
    FixedFinishRatio(f64),
}

/// TD-Pipe scheduler configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TdPipeConfig {
    /// Shared engine parameters.
    pub engine: EngineConfig,
    /// Prefill→decode switching policy.
    pub p2d: P2dPolicy,
    /// Decode→prefill switching policy.
    pub d2p: D2pPolicy,
    /// Inter-batch work stealing on/off (paper §3.4 / Fig. 15).
    pub work_stealing: bool,
    /// Use the LM-head-aware pipeline partition (an extension beyond the
    /// paper: shave layers off the last stage to offset its LM-head work,
    /// which otherwise bottlenecks every decode round for large-vocab or
    /// small-hidden models). Off by default for paper fidelity.
    pub lm_head_aware_partition: bool,
    /// Spacing of Algorithm 1's `futurePoints` in decode steps.
    pub future_point_stride: u32,
    /// Last `futurePoint` checked (the paper's example uses 32…1024).
    pub future_point_max: u32,
}

impl Default for TdPipeConfig {
    fn default() -> Self {
        TdPipeConfig {
            engine: EngineConfig {
                // The hierarchy-controller's decoupled control plane makes
                // stage-to-stage transfers non-blocking (§3.2).
                transfer_mode: TransferMode::Async,
                decoupled_control: true,
                max_num_seqs: None,
                pp_inflight_limit: usize::MAX,
                ..EngineConfig::default()
            },
            p2d: P2dPolicy::Greedy,
            d2p: D2pPolicy::Intensity,
            work_stealing: true,
            lm_head_aware_partition: false,
            future_point_stride: 32,
            future_point_max: 1024,
        }
    }
}

impl TdPipeConfig {
    /// The `futurePoints` grid (32, 64, …, 1024 by default).
    pub fn future_points(&self) -> Vec<u32> {
        (1..=self.future_point_max / self.future_point_stride)
            .map(|i| i * self.future_point_stride)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_future_points_match_paper_example() {
        let c = TdPipeConfig::default();
        let fp = c.future_points();
        assert_eq!(fp.first(), Some(&32));
        assert_eq!(fp.last(), Some(&1024));
        assert_eq!(fp.len(), 32);
        assert!(fp.windows(2).all(|w| w[1] - w[0] == 32));
    }

    #[test]
    fn configs_round_trip_through_json() {
        let c = TdPipeConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let d: TdPipeConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, d);
        // Policy enums serialise too.
        let p = P2dPolicy::FixedOccupancy(0.8);
        let q: P2dPolicy = serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn tdpipe_defaults_encode_the_architecture() {
        let c = TdPipeConfig::default();
        // Hierarchy-controller: async transfers + decoupled control.
        assert_eq!(c.engine.transfer_mode, tdpipe_sim::TransferMode::Async);
        assert!(c.engine.decoupled_control);
        assert!(c.engine.max_num_seqs.is_none());
        // Baseline defaults are the conventional-engine ones.
        let e = EngineConfig::default();
        assert_eq!(e.transfer_mode, tdpipe_sim::TransferMode::Rendezvous);
        assert!(!e.decoupled_control);
        assert!(e.max_num_seqs.is_some());
        assert!(e.pp_inflight_limit < 4);
    }

    #[test]
    fn defaults_are_sane() {
        let e = EngineConfig::default();
        assert!(e.block_size > 0);
        assert!(e.watermark < 0.5);
        assert!(e.engine_overhead < 0.1);
    }
}
