//! Decode batches: the unit the decode phase pipelines.

use crate::request::RequestPool;

/// A decode batch: a set of resident requests that step together. With `n`
/// pipeline stages the engine keeps `n` batches in flight so every stage
/// has work (paper §3.4: "we divide the requests into batches equal to the
/// number of GPUs").
#[derive(Debug, Clone, Default)]
pub struct DecodeBatch {
    /// Pool indices of member requests.
    pub members: Vec<usize>,
}

impl DecodeBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Batch size.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the batch has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Total context tokens (KV the next step must read).
    pub fn total_ctx(&self, pool: &RequestPool) -> u64 {
        self.members
            .iter()
            .map(|&i| pool.resident_tokens(i))
            .sum()
    }
}

/// Partition `members` into `n` batches as evenly as possible, preserving
/// order (round-robin would interleave admission order; contiguous chunks
/// keep each batch's requests age-adjacent, which makes the newest-first
/// eviction policy coherent).
pub fn partition_even(members: &[usize], n: usize) -> Vec<DecodeBatch> {
    let mut out = Vec::new();
    partition_even_into(members, n, &mut out);
    out
}

/// [`partition_even`] into a caller-owned batch list: the member vectors
/// keep their capacity across phase switches, so the steady-state engine
/// allocates nothing per switch once every batch has reached its
/// high-water size.
pub fn partition_even_into(members: &[usize], n: usize, out: &mut Vec<DecodeBatch>) {
    assert!(n > 0, "need at least one batch");
    out.resize_with(n, DecodeBatch::new);
    for b in out.iter_mut() {
        b.members.clear();
    }
    if members.is_empty() {
        return;
    }
    let base = members.len() / n;
    let extra = members.len() % n;
    let mut cursor = 0;
    for (i, batch) in out.iter_mut().enumerate() {
        let take = base + usize::from(i < extra);
        batch.members.extend_from_slice(&members[cursor..cursor + take]);
        cursor += take;
    }
    debug_assert_eq!(cursor, members.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdpipe_workload::ShareGptLikeConfig;

    #[test]
    fn partition_is_even_and_complete() {
        let members: Vec<usize> = (0..10).collect();
        let batches = partition_even(&members, 4);
        let sizes: Vec<usize> = batches.iter().map(|b| b.len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        let mut all: Vec<usize> = batches.iter().flat_map(|b| b.members.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, members);
    }

    #[test]
    fn partition_handles_fewer_members_than_batches() {
        let batches = partition_even(&[7, 8], 4);
        let sizes: Vec<usize> = batches.iter().map(|b| b.len()).collect();
        assert_eq!(sizes, vec![1, 1, 0, 0]);
    }

    #[test]
    fn empty_partition() {
        let batches = partition_even(&[], 3);
        assert!(batches.iter().all(|b| b.is_empty()));
    }

    #[test]
    fn partition_into_reuses_and_repartitions() {
        let mut out = Vec::new();
        partition_even_into(&(0..10).collect::<Vec<_>>(), 4, &mut out);
        let caps: Vec<usize> = out.iter().map(|b| b.members.capacity()).collect();
        // Repartitioning a smaller set must clear, keep capacity, and
        // produce exactly the fresh result.
        partition_even_into(&[1, 2, 3], 4, &mut out);
        let sizes: Vec<usize> = out.iter().map(|b| b.len()).collect();
        assert_eq!(sizes, vec![1, 1, 1, 0]);
        for (b, cap) in out.iter().zip(caps) {
            assert!(b.members.capacity() >= cap.min(b.len()));
        }
        let fresh = partition_even(&[1, 2, 3], 4);
        for (a, b) in out.iter().zip(&fresh) {
            assert_eq!(a.members, b.members);
        }
    }

    #[test]
    fn total_ctx_sums_resident_tokens() {
        let t = ShareGptLikeConfig::small(4, 2).generate();
        let mut pool = crate::request::RequestPool::new(t.requests(), |r| r.output_len);
        for i in 0..4 {
            let tokens = pool.input_len(i);
            pool.note_prefill(i, tokens);
        }
        pool.note_decode_step(0, 0.0);
        let b = DecodeBatch {
            members: vec![0, 1],
        };
        let expect = pool.resident_tokens(0) + pool.resident_tokens(1);
        assert_eq!(b.total_ctx(&pool), expect);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_batches_panics() {
        partition_even(&[1], 0);
    }
}
