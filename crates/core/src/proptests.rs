//! Property tests over TD-Pipe's decision mechanisms.

use crate::batch::partition_even;
use crate::greedy::GreedyPrefillPlanner;
use crate::steal::WorkStealer;
use proptest::prelude::*;

/// One step of a planner delta sequence (see
/// `greedy_incremental_deltas_match_rebuild`).
#[derive(Debug, Clone, Copy)]
enum PlannerOp {
    /// Admit a request with (current tokens, predicted remaining).
    Admit(u64, u32),
    /// Remove the `n`-th live request (modulo the live count).
    Remove(usize),
    /// Advance the `n`-th live request by `steps` decode steps.
    Advance(usize, u32),
}

proptest! {
    #[test]
    fn partition_even_is_a_partition(members in prop::collection::vec(0usize..10_000, 0..500), n in 1usize..8) {
        let batches = partition_even(&members, n);
        prop_assert_eq!(batches.len(), n);
        let mut all: Vec<usize> = batches.iter().flat_map(|b| b.members.clone()).collect();
        prop_assert_eq!(&all[..], &members[..], "order-preserving concatenation");
        all.sort_unstable();
        let mut sorted = members.clone();
        sorted.sort_unstable();
        prop_assert_eq!(all, sorted);
        let min = batches.iter().map(|b| b.len()).min().unwrap();
        let max = batches.iter().map(|b| b.len()).max().unwrap();
        prop_assert!(max - min <= 1, "even to within one");
    }

    #[test]
    fn greedy_usage_is_additive_and_monotone(
        reqs in prop::collection::vec((1u32..1024, 0u32..256, 1u32..1200), 1..40),
        cap in 1u64..1_000_000,
    ) {
        let points: Vec<u32> = (1..=8).map(|i| i * 32).collect();
        let mut p = GreedyPrefillPlanner::new(points.clone(), cap);
        let mut prev_peak = 0;
        for (id, &(input, generated, predicted)) in reqs.iter().enumerate() {
            let current = input as u64 + generated as u64;
            p.admit(id, current, predicted.max(1).saturating_sub(generated));
            let peak = p.peak_usage();
            prop_assert!(peak >= prev_peak, "usage only grows during admission");
            prev_peak = peak;
        }
        // Clearing drops every resident.
        p.clear();
        prop_assert_eq!(p.peak_usage(), 0);
        // Re-adding the same set reproduces the same peak (determinism).
        for (id, &(input, generated, predicted)) in reqs.iter().enumerate() {
            let current = input as u64 + generated as u64;
            p.admit(id, current, predicted.max(1).saturating_sub(generated));
        }
        prop_assert_eq!(p.peak_usage(), prev_peak);
    }

    #[test]
    fn greedy_peak_bounds_true_token_demand(
        reqs in prop::collection::vec((1u32..512, 33u32..1200), 1..40),
    ) {
        // For requests whose predicted output survives the first future
        // point, the simulated peak is at least (input + 32) each — the
        // planner never *under*-counts live requests at fp=32.
        let points: Vec<u32> = (1..=32).map(|i| i * 32).collect();
        let mut p = GreedyPrefillPlanner::new(points, u64::MAX);
        let mut lower = 0u64;
        for (id, &(input, predicted)) in reqs.iter().enumerate() {
            p.admit(id, input as u64, predicted);
            lower += input as u64 + 32;
        }
        prop_assert!(p.peak_usage() >= lower);
    }

    /// Satellite: the incremental planner deltas (admit / remove / advance)
    /// agree with a from-scratch rebuild on the whole usage grid — and so
    /// on `peak_usage` and `would_overflow` — across random sequences.
    #[test]
    fn greedy_incremental_deltas_match_rebuild(
        ops in prop::collection::vec(
            prop_oneof![
                (1u64..4096, 0u32..1200).prop_map(|(c, p)| PlannerOp::Admit(c, p)),
                (0usize..64).prop_map(PlannerOp::Remove),
                (0usize..64, 1u32..300).prop_map(|(n, s)| PlannerOp::Advance(n, s)),
            ],
            1..100,
        ),
        cap in 1u64..1_000_000,
    ) {
        let points: Vec<u32> = (1..=8).map(|i| i * 32).collect();
        let mut planner = GreedyPrefillPlanner::new(points.clone(), cap);
        // Shadow model: the (current, predicted-remaining) state every live
        // request *should* have after the sequence so far.
        let mut shadow: Vec<Option<(u64, u32)>> = Vec::new();
        for op in ops {
            match op {
                PlannerOp::Admit(c, p) => {
                    let id = shadow.len();
                    planner.admit(id, c, p);
                    shadow.push(Some((c, p)));
                }
                PlannerOp::Remove(n) => {
                    let live: Vec<usize> =
                        (0..shadow.len()).filter(|&i| shadow[i].is_some()).collect();
                    if live.is_empty() {
                        continue;
                    }
                    let id = live[n % live.len()];
                    planner.remove_request(id);
                    shadow[id] = None;
                }
                PlannerOp::Advance(n, steps) => {
                    let live: Vec<usize> =
                        (0..shadow.len()).filter(|&i| shadow[i].is_some()).collect();
                    if live.is_empty() {
                        continue;
                    }
                    let id = live[n % live.len()];
                    planner.advance(id, steps);
                    let (c, p) = shadow[id].unwrap();
                    shadow[id] = Some((c + steps as u64, p.saturating_sub(steps)));
                }
            }
            // Rebuild from scratch and compare the full grid.
            let mut oracle = GreedyPrefillPlanner::new(points.clone(), cap);
            for (id, s) in shadow.iter().enumerate() {
                if let Some((c, p)) = s {
                    oracle.admit(id, *c, *p);
                }
            }
            prop_assert_eq!(oracle.usage(), planner.usage());
            prop_assert_eq!(oracle.peak_usage(), planner.peak_usage());
            prop_assert_eq!(oracle.would_overflow(), planner.would_overflow());
        }
    }

    #[test]
    fn stealing_conserves_and_tightens(
        sizes in prop::collection::vec(1usize..200, 2..6),
        rounds in 1usize..12,
    ) {
        let mut next_id = 0usize;
        let mut batches: Vec<Vec<usize>> = sizes
            .iter()
            .map(|&s| {
                let b: Vec<usize> = (next_id..next_id + s).collect();
                next_id += s;
                b
            })
            .collect();
        let total: usize = sizes.iter().sum();
        let mut stealer = WorkStealer::new(&sizes);
        for _ in 0..rounds {
            for b in batches.iter_mut() {
                stealer.on_batch_return(b, 0);
            }
        }
        let held: usize = batches.iter().map(Vec::len).sum::<usize>() + stealer.withheld().len();
        prop_assert_eq!(held, total, "no request lost or duplicated");
        // No duplicates anywhere.
        let mut all: Vec<usize> = batches.iter().flatten().copied().collect();
        all.extend(stealer.withheld());
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), total);
        // With no completions, several rounds must tighten the spread to
        // within ~1 of even (+ leftover pool smaller than one batch gap).
        if rounds >= sizes.len() + 2 {
            let min = batches.iter().map(Vec::len).min().unwrap();
            let max = batches.iter().map(Vec::len).max().unwrap();
            prop_assert!(max - min <= 2, "spread {min}..{max} after {rounds} rounds");
        }
    }
}
