//! Property tests over TD-Pipe's decision mechanisms.

use crate::batch::partition_even;
use crate::greedy::GreedyPrefillPlanner;
use crate::request::{Lifecycle, RequestState};
use crate::steal::WorkStealer;
use proptest::prelude::*;
use tdpipe_workload::RequestId;

fn req(input: u32, generated: u32, predicted: u32) -> RequestState {
    RequestState {
        id: RequestId(0),
        input_len: input,
        output_len: predicted.max(1),
        predicted: predicted.max(1),
        generated,
        lifecycle: Lifecycle::Decoding,
        evictions: 0,
        swapped: false,
        arrival: 0.0,
        first_token_at: f64::NAN,
        finished_at: f64::NAN,
    }
}

proptest! {
    #[test]
    fn partition_even_is_a_partition(members in prop::collection::vec(0usize..10_000, 0..500), n in 1usize..8) {
        let batches = partition_even(&members, n);
        prop_assert_eq!(batches.len(), n);
        let mut all: Vec<usize> = batches.iter().flat_map(|b| b.members.clone()).collect();
        prop_assert_eq!(&all[..], &members[..], "order-preserving concatenation");
        all.sort_unstable();
        let mut sorted = members.clone();
        sorted.sort_unstable();
        prop_assert_eq!(all, sorted);
        let min = batches.iter().map(|b| b.len()).min().unwrap();
        let max = batches.iter().map(|b| b.len()).max().unwrap();
        prop_assert!(max - min <= 1, "even to within one");
    }

    #[test]
    fn greedy_usage_is_additive_and_monotone(
        reqs in prop::collection::vec((1u32..1024, 0u32..256, 1u32..1200), 1..40),
        cap in 1u64..1_000_000,
    ) {
        let points: Vec<u32> = (1..=8).map(|i| i * 32).collect();
        let mut p = GreedyPrefillPlanner::new(points.clone(), cap);
        let mut prev_peak = 0;
        for &(input, generated, predicted) in &reqs {
            p.add_request(&req(input, generated, predicted));
            let peak = p.peak_usage();
            prop_assert!(peak >= prev_peak, "usage only grows during admission");
            prev_peak = peak;
        }
        // Reset with no residents clears everything.
        p.reset(std::iter::empty());
        prop_assert_eq!(p.peak_usage(), 0);
        // Re-adding the same set reproduces the same peak (determinism).
        for &(input, generated, predicted) in &reqs {
            p.add_request(&req(input, generated, predicted));
        }
        prop_assert_eq!(p.peak_usage(), prev_peak);
    }

    #[test]
    fn greedy_peak_bounds_true_token_demand(
        reqs in prop::collection::vec((1u32..512, 33u32..1200), 1..40),
    ) {
        // For requests whose predicted output survives the first future
        // point, the simulated peak is at least (input + 32) each — the
        // planner never *under*-counts live requests at fp=32.
        let points: Vec<u32> = (1..=32).map(|i| i * 32).collect();
        let mut p = GreedyPrefillPlanner::new(points, u64::MAX);
        let mut lower = 0u64;
        for &(input, predicted) in &reqs {
            p.add_request(&req(input, 0, predicted));
            lower += input as u64 + 32;
        }
        prop_assert!(p.peak_usage() >= lower);
    }

    #[test]
    fn stealing_conserves_and_tightens(
        sizes in prop::collection::vec(1usize..200, 2..6),
        rounds in 1usize..12,
    ) {
        let mut next_id = 0usize;
        let mut batches: Vec<Vec<usize>> = sizes
            .iter()
            .map(|&s| {
                let b: Vec<usize> = (next_id..next_id + s).collect();
                next_id += s;
                b
            })
            .collect();
        let total: usize = sizes.iter().sum();
        let mut stealer = WorkStealer::new(&sizes);
        for _ in 0..rounds {
            for b in batches.iter_mut() {
                stealer.on_batch_return(b, 0);
            }
        }
        let held: usize = batches.iter().map(Vec::len).sum::<usize>() + stealer.withheld().len();
        prop_assert_eq!(held, total, "no request lost or duplicated");
        // No duplicates anywhere.
        let mut all: Vec<usize> = batches.iter().flatten().copied().collect();
        all.extend(stealer.withheld());
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), total);
        // With no completions, several rounds must tighten the spread to
        // within ~1 of even (+ leftover pool smaller than one batch gap).
        if rounds >= sizes.len() + 2 {
            let min = batches.iter().map(Vec::len).min().unwrap();
            let max = batches.iter().map(Vec::len).max().unwrap();
            prop_assert!(max - min <= 2, "spread {min}..{max} after {rounds} rounds");
        }
    }
}
