//! Memoized decode→prefill phase pricing.
//!
//! The spatial-temporal switch (§3.5) prices the *hypothetical next
//! prefill phase* on every decode step: pack pending requests by predicted
//! KV need into the currently free capacity, batch them like the real
//! prefill packer, and report the longest job plus the phase length. The
//! pending queue's *prefix* is stable for a whole decode phase (only
//! evictions push to the front), while the only per-step variable is how
//! much KV is currently free — so the packing walk can be cached once and
//! each query reduced to a binary search plus one O(stages) job pricing.
//!
//! Bit-identity with the naive walk is by construction: the per-position
//! cache stores exactly the accumulators the naive loop would hold at that
//! position (cumulative need in `u64`, per-batch token/attention-FLOP sums
//! accumulated in queue order), and the batch jobs are rebuilt through
//! [`PpCost::prefill_job_from_parts`], which shares every float operation
//! with the slice-based pricing. A debug assertion in the engine compares
//! the cached estimate against the naive recomputation on every query.

use crate::cost::{PpCost, StagedJob};
use crate::intensity::PrefillPhaseEstimate;
use crate::request::RequestPool;
use std::collections::VecDeque;

/// Per-pending-position snapshot of the packing walk, *after* including
/// that position's request.
#[derive(Debug, Clone, Copy)]
struct PackPoint {
    /// Cumulative predicted KV need (prefill tokens + predicted remaining)
    /// over pending positions `0..=i` — monotone, so the number of packed
    /// requests for a given free-token budget is a `partition_point`.
    cum_need: u64,
    /// Phase length over batches already flushed at this position.
    closed_phase_len: f64,
    /// Longest-job running max over batches already flushed.
    closed_longest: f64,
    /// Token total of the open (not yet flushed) batch.
    open_tokens: u64,
    /// Attention FLOPs of the open batch, accumulated in queue order.
    open_attn: f64,
    /// Sequence count of the open batch.
    open_seqs: u64,
    /// The packer's `u32` budget accumulator for the open batch (kept in
    /// the packer's own width so the flush boundaries match exactly).
    open_budget: u32,
}

/// Cache of the estimate-packing walk over the pending queue's prefix.
///
/// Invalidate whenever the pending queue's front can have changed (decode
/// phase start, every eviction push); queries lazily rebuild.
#[derive(Debug, Default)]
pub(crate) struct PrefillEstimateCache {
    valid: bool,
    points: Vec<PackPoint>,
    job: StagedJob,
}

impl PrefillEstimateCache {
    /// Drop the cached walk (the pending prefix changed).
    #[inline]
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Price the hypothetical next prefill phase given `free_tokens` of
    /// currently free KV. `token_capacity` bounds how deep the walk can
    /// ever be queried (free tokens never exceed the pool), so the cache
    /// stops building there.
    pub fn query(
        &mut self,
        pending: &VecDeque<usize>,
        pool: &RequestPool,
        cost: &PpCost,
        prefill_token_budget: u32,
        token_capacity: u64,
        free_tokens: u64,
    ) -> PrefillPhaseEstimate {
        if !self.valid {
            self.rebuild(pending, pool, cost, prefill_token_budget, token_capacity);
        }
        let packed = self
            .points
            .partition_point(|pt| pt.cum_need <= free_tokens);
        if packed == 0 {
            return PrefillPhaseEstimate {
                longest_job: 0.0,
                phase_len: 0.0,
            };
        }
        let pt = &self.points[packed - 1];
        let mut longest = pt.closed_longest;
        let mut phase_len = pt.closed_phase_len;
        if pt.open_seqs > 0 {
            cost.prefill_job_from_parts(pt.open_tokens, pt.open_attn, pt.open_seqs, &mut self.job);
            longest = longest.max(self.job.latency());
            phase_len += self.job.bottleneck();
        }
        PrefillPhaseEstimate {
            longest_job: longest,
            phase_len,
        }
    }

    fn rebuild(
        &mut self,
        pending: &VecDeque<usize>,
        pool: &RequestPool,
        cost: &PpCost,
        prefill_token_budget: u32,
        token_capacity: u64,
    ) {
        self.points.clear();
        let model = cost.model();
        let mut pt = PackPoint {
            cum_need: 0,
            closed_phase_len: 0.0,
            closed_longest: 0.0,
            open_tokens: 0,
            open_attn: 0.0,
            open_seqs: 0,
            open_budget: 0,
        };
        for &idx in pending {
            let t = pool.prefill_tokens(idx);
            pt.cum_need += (t + pool.predicted_remaining(idx)) as u64;
            if pt.open_seqs > 0 && pt.open_budget + t > prefill_token_budget {
                // Flush the open batch, exactly where the naive packer
                // would (same u32 budget arithmetic).
                cost.prefill_job_from_parts(
                    pt.open_tokens,
                    pt.open_attn,
                    pt.open_seqs,
                    &mut self.job,
                );
                pt.closed_longest = pt.closed_longest.max(self.job.latency());
                pt.closed_phase_len += self.job.bottleneck();
                pt.open_tokens = 0;
                pt.open_attn = 0.0;
                pt.open_seqs = 0;
                pt.open_budget = 0;
            }
            pt.open_tokens += t as u64;
            pt.open_attn += model.prefill_attn_flops(t);
            pt.open_seqs += 1;
            pt.open_budget += t;
            self.points.push(pt);
            if pt.cum_need > token_capacity {
                // No query can reach past this point: free tokens are
                // bounded by the pool capacity.
                break;
            }
        }
        self.valid = true;
    }
}
