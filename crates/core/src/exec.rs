//! The execution-plane abstraction the engine schedules against.
//!
//! The TD-Pipe engine only needs four things from an execution plane:
//! launch a staged job, learn (in launch order) when jobs finish, know how
//! many are outstanding, and drain at the end. The deterministic simulator
//! satisfies this trivially; so does the threaded hierarchy-controller of
//! `tdpipe-runtime` — which is how the *same engine code* is proven to run
//! on real concurrency (see that crate's `TdPipeEngine` integration test).

use tdpipe_sim::{PipelineSim, SegmentKind, Timeline, TransferMode};

/// Failure class of an execution plane (mirrors the runtime's
/// `RuntimeError` without depending on the runtime crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecErrorKind {
    /// A worker in the execution plane panicked.
    WorkerPanicked,
    /// A channel/endpoint closed under a live pipeline.
    Disconnected,
    /// A bounded wait (completion or shutdown drain) expired.
    Timeout,
    /// The plane violated its protocol (bad ack, out-of-order
    /// completion — the shadow of a lost stage message).
    ProtocolViolation,
}

/// A structured execution-plane failure as the engine sees it.
///
/// The deterministic simulator never produces one; the threaded
/// hierarchy-controller maps every `RuntimeError` into this type so the
/// scheduling loop observes a clean error instead of a cascading panic.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecError {
    /// Failure class.
    pub kind: ExecErrorKind,
    /// Human-readable root cause.
    pub message: String,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "execution plane failed: {}", self.message)
    }
}

impl std::error::Error for ExecError {}

/// Execution-plane statistics exported into the metrics plane.
///
/// Collected by the engine just before `try_finish` (which consumes the
/// executor), so a plane accumulates them live instead of at shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlaneStats {
    /// High-water mark of the completion-queue depth: the most jobs that
    /// were ever launched-but-uncollected at once.
    pub queue_depth_high_water: usize,
}

/// An execution plane: something that runs staged pipeline jobs.
///
/// Completions are reported strictly in launch order (guaranteed by FIFO
/// stages in both implementations).
pub trait PipelineExecutor {
    /// Launch a job (non-blocking). A plane that can fail asynchronously
    /// reports the failure from the completion path, not from here.
    fn launch(&mut self, ready: f64, exec: &[f64], xfer: &[f64], kind: SegmentKind, tag: u64);

    /// Block until the oldest outstanding job completes; returns
    /// `(tag, finish_time)`.
    ///
    /// # Panics
    /// Panics if nothing is outstanding, or on an execution-plane
    /// failure (prefer [`Self::try_next_completion`]).
    fn next_completion(&mut self) -> (u64, f64);

    /// Fallible [`Self::next_completion`]: a supervised plane returns a
    /// structured [`ExecError`] within a bounded wait instead of
    /// panicking or hanging. Infallible planes use this default.
    ///
    /// # Panics
    /// Panics if nothing is outstanding.
    fn try_next_completion(&mut self) -> Result<(u64, f64), ExecError> {
        Ok(self.next_completion())
    }

    /// Number of launched-but-uncompleted jobs.
    fn outstanding(&self) -> usize;

    /// Finish collecting: wait out all outstanding jobs and return the
    /// final virtual time plus whatever timeline was recorded.
    ///
    /// # Panics
    /// Panics on an execution-plane failure (prefer
    /// [`Self::try_finish`]).
    fn finish(self: Box<Self>) -> (f64, Timeline);

    /// Fallible [`Self::finish`] with the same bounded-wait guarantees
    /// as [`Self::try_next_completion`].
    fn try_finish(self: Box<Self>) -> Result<(f64, Timeline), ExecError> {
        Ok(self.finish())
    }

    /// Plane-side statistics for the metrics plane. The engine reads them
    /// once, right before finishing; planes that track nothing use this
    /// zeroed default.
    fn plane_stats(&self) -> PlaneStats {
        PlaneStats::default()
    }
}

/// The deterministic simulator as an execution plane.
pub struct SimExecutor {
    sim: PipelineSim,
    completions: std::collections::VecDeque<(u64, f64)>,
    depth_hw: usize,
}

impl SimExecutor {
    /// A simulator-backed executor.
    pub fn new(num_stages: u32, mode: TransferMode, record_timeline: bool) -> Self {
        SimExecutor {
            sim: PipelineSim::new(num_stages, mode, record_timeline),
            completions: std::collections::VecDeque::new(),
            depth_hw: 0,
        }
    }
}

impl PipelineExecutor for SimExecutor {
    fn launch(&mut self, ready: f64, exec: &[f64], xfer: &[f64], kind: SegmentKind, tag: u64) {
        let t = self.sim.launch(ready, exec, xfer, kind, tag);
        self.completions.push_back((tag, t.finish));
        self.depth_hw = self.depth_hw.max(self.completions.len());
    }

    fn next_completion(&mut self) -> (u64, f64) {
        // analyzer: allow(no-expect) — caller-side sequencing bug
        // (completion awaited with nothing launched), documented under
        // `# Panics` on the trait method; the simulator itself cannot
        // lose a job.
        self.completions.pop_front().expect("no outstanding job to complete")
    }

    fn outstanding(&self) -> usize {
        self.completions.len()
    }

    fn finish(self: Box<Self>) -> (f64, Timeline) {
        let drained = self.sim.drained_at();
        (drained, self.sim.into_timeline())
    }

    fn plane_stats(&self) -> PlaneStats {
        PlaneStats {
            queue_depth_high_water: self.depth_hw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_executor_reports_in_launch_order() {
        let mut ex = SimExecutor::new(2, TransferMode::Async, false);
        ex.launch(0.0, &[1.0, 1.0], &[0.0], SegmentKind::Decode, 7);
        ex.launch(0.0, &[0.1, 0.1], &[0.0], SegmentKind::Decode, 8);
        assert_eq!(ex.outstanding(), 2);
        let (t0, f0) = ex.next_completion();
        let (t1, f1) = ex.next_completion();
        assert_eq!((t0, t1), (7, 8));
        assert!(f1 >= f0);
        let (drained, _) = Box::new(ex).finish();
        assert!(drained >= f1);
    }

    #[test]
    fn sim_executor_try_paths_are_infallible() {
        let mut ex = SimExecutor::new(2, TransferMode::Async, false);
        ex.launch(0.0, &[1.0, 1.0], &[0.0], SegmentKind::Decode, 1);
        let (tag, _) = ex.try_next_completion().expect("simulator cannot fail");
        assert_eq!(tag, 1);
        let boxed: Box<dyn PipelineExecutor> = Box::new(ex);
        assert!(boxed.try_finish().is_ok());
    }

    #[test]
    fn exec_error_displays_root_cause() {
        let e = ExecError {
            kind: ExecErrorKind::WorkerPanicked,
            message: "worker 2 panicked: boom".into(),
        };
        assert!(e.to_string().contains("worker 2"));
    }
}
