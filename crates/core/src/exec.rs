//! The execution-plane abstraction the engine schedules against.
//!
//! The TD-Pipe engine only needs four things from an execution plane:
//! launch a staged job, learn (in launch order) when jobs finish, know how
//! many are outstanding, and drain at the end. The deterministic simulator
//! satisfies this trivially; so does the threaded hierarchy-controller of
//! `tdpipe-runtime` — which is how the *same engine code* is proven to run
//! on real concurrency (see that crate's `TdPipeEngine` integration test).

use tdpipe_sim::{PipelineSim, SegmentKind, Timeline, TransferMode};

/// An execution plane: something that runs staged pipeline jobs.
///
/// Completions are reported strictly in launch order (guaranteed by FIFO
/// stages in both implementations).
pub trait PipelineExecutor {
    /// Launch a job (non-blocking).
    fn launch(&mut self, ready: f64, exec: &[f64], xfer: &[f64], kind: SegmentKind, tag: u64);

    /// Block until the oldest outstanding job completes; returns
    /// `(tag, finish_time)`.
    ///
    /// # Panics
    /// Panics if nothing is outstanding.
    fn next_completion(&mut self) -> (u64, f64);

    /// Number of launched-but-uncompleted jobs.
    fn outstanding(&self) -> usize;

    /// Finish collecting: wait out all outstanding jobs and return the
    /// final virtual time plus whatever timeline was recorded.
    fn finish(self: Box<Self>) -> (f64, Timeline);
}

/// The deterministic simulator as an execution plane.
pub struct SimExecutor {
    sim: PipelineSim,
    completions: std::collections::VecDeque<(u64, f64)>,
}

impl SimExecutor {
    /// A simulator-backed executor.
    pub fn new(num_stages: u32, mode: TransferMode, record_timeline: bool) -> Self {
        SimExecutor {
            sim: PipelineSim::new(num_stages, mode, record_timeline),
            completions: std::collections::VecDeque::new(),
        }
    }
}

impl PipelineExecutor for SimExecutor {
    fn launch(&mut self, ready: f64, exec: &[f64], xfer: &[f64], kind: SegmentKind, tag: u64) {
        let t = self.sim.launch(ready, exec, xfer, kind, tag);
        self.completions.push_back((tag, t.finish));
    }

    fn next_completion(&mut self) -> (u64, f64) {
        self.completions
            .pop_front()
            .expect("no outstanding job to complete")
    }

    fn outstanding(&self) -> usize {
        self.completions.len()
    }

    fn finish(self: Box<Self>) -> (f64, Timeline) {
        let drained = self.sim.drained_at();
        (drained, self.sim.into_timeline())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_executor_reports_in_launch_order() {
        let mut ex = SimExecutor::new(2, TransferMode::Async, false);
        ex.launch(0.0, &[1.0, 1.0], &[0.0], SegmentKind::Decode, 7);
        ex.launch(0.0, &[0.1, 0.1], &[0.0], SegmentKind::Decode, 8);
        assert_eq!(ex.outstanding(), 2);
        let (t0, f0) = ex.next_completion();
        let (t1, f1) = ex.next_completion();
        assert_eq!((t0, t1), (7, 8));
        assert!(f1 >= f0);
        let (drained, _) = Box::new(ex).finish();
        assert!(drained >= f1);
    }
}
