//! `analyzer.toml` — per-crate rule sets.
//!
//! The workspace has no TOML dependency, so this module parses the small
//! subset the config actually uses:
//!
//! ```toml
//! [set.determinism]
//! paths = [
//!     "crates/sim/src",
//!     "crates/core/src",
//! ]
//! rules = ["no-instant-now", "no-hash-collections"]
//! ```
//!
//! `[set.<name>]` tables with string-array `paths` (crate source dirs or
//! single files, repo-root-relative) and `rules` (names from
//! [`crate::rules::registry`]). Two auxiliary tables feed the semantic
//! rules:
//!
//! ```toml
//! [units]                 # name → accounting dimension annotations
//! held = "blocks"         # overrides suffix inference for this ident
//!
//! [observers]             # roots an observer branch may assign to
//! names = ["occupancy"]
//! ```
//!
//! `#` comments and multi-line arrays are supported; anything fancier is
//! a config error, not silently ignored.

use crate::rules::{rule_by_name, Unit};
use std::collections::BTreeMap;
use std::path::Path;

/// One named rule set: these `rules` apply to files under these `paths`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSet {
    /// Set name (from the `[set.<name>]` header).
    pub name: String,
    /// Repo-root-relative source dirs or files.
    pub paths: Vec<String>,
    /// Rule names to apply.
    pub rules: Vec<String>,
}

/// The parsed configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// All rule sets, in file order.
    pub sets: Vec<RuleSet>,
    /// `[units]` annotations: identifier → accounting dimension.
    pub units: BTreeMap<String, Unit>,
    /// `[observers]` names: roots observer branches may assign to.
    pub observers: Vec<String>,
}

/// Which table the parser is currently inside.
enum Section {
    Set(usize),
    Units,
    Observers,
}

impl Config {
    /// Load and validate `analyzer.toml`.
    pub fn load(path: &Path) -> Result<Config, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Config::parse(&text)
    }

    /// Parse the config text; validates rule names against the registry.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut sets: Vec<RuleSet> = Vec::new();
        let mut units: BTreeMap<String, Unit> = BTreeMap::new();
        let mut observers: Vec<String> = Vec::new();
        let mut section: Option<Section> = None;
        let mut lines = text.lines().enumerate().peekable();
        while let Some((n, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                if let Some(name) = header.strip_prefix("set.") {
                    if name.is_empty() {
                        return Err(format!("line {}: empty set name", n + 1));
                    }
                    sets.push(RuleSet {
                        name: name.to_string(),
                        paths: Vec::new(),
                        rules: Vec::new(),
                    });
                    section = Some(Section::Set(sets.len() - 1));
                } else if header == "units" {
                    section = Some(Section::Units);
                } else if header == "observers" {
                    section = Some(Section::Observers);
                } else {
                    return Err(format!(
                        "line {}: only [set.<name>], [units], and [observers] tables are \
                         supported",
                        n + 1
                    ));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", n + 1));
            };
            let key = key.trim();
            let mut value = value.trim().to_string();
            // Multi-line array: accumulate until the closing bracket.
            while value.starts_with('[') && !balanced(&value) {
                let Some((_, cont)) = lines.next() else {
                    return Err(format!("line {}: unterminated array", n + 1));
                };
                value.push(' ');
                value.push_str(strip_comment(cont).trim());
            }
            match section {
                Some(Section::Set(si)) => {
                    let items = parse_string_array(&value)
                        .map_err(|e| format!("line {}: {e}", n + 1))?;
                    match key {
                        "paths" => sets[si].paths = items,
                        "rules" => sets[si].rules = items,
                        other => {
                            return Err(format!("line {}: unknown key `{other}`", n + 1))
                        }
                    }
                }
                Some(Section::Units) => {
                    let s = parse_string(&value)
                        .map_err(|e| format!("line {}: {e}", n + 1))?;
                    let unit = Unit::parse(&s).ok_or_else(|| {
                        format!(
                            "line {}: `{s}` is not a unit (tokens/blocks/seconds/bytes/count)",
                            n + 1
                        )
                    })?;
                    units.insert(key.to_string(), unit);
                }
                Some(Section::Observers) => {
                    if key != "names" {
                        return Err(format!(
                            "line {}: [observers] supports only `names`",
                            n + 1
                        ));
                    }
                    observers = parse_string_array(&value)
                        .map_err(|e| format!("line {}: {e}", n + 1))?;
                }
                None => {
                    return Err(format!(
                        "line {}: `{key}` outside a [set.*] table",
                        n + 1
                    ))
                }
            }
        }
        for set in &sets {
            if set.paths.is_empty() {
                return Err(format!("set `{}` has no paths", set.name));
            }
            if set.rules.is_empty() {
                return Err(format!("set `{}` has no rules", set.name));
            }
            for rule in &set.rules {
                if rule_by_name(rule).is_none() {
                    return Err(format!(
                        "set `{}` names unknown rule `{rule}` (see `analyzer --list-rules`)",
                        set.name
                    ));
                }
            }
        }
        Ok(Config {
            sets,
            units,
            observers,
        })
    }

    /// The paths every set naming `rule` covers.
    pub fn paths_with_rule(&self, rule: &str) -> Vec<&str> {
        let mut out = Vec::new();
        for set in &self.sets {
            if set.rules.iter().any(|r| r == rule) {
                out.extend(set.paths.iter().map(String::as_str));
            }
        }
        out
    }
}

fn strip_comment(line: &str) -> &str {
    // `#` outside quotes starts a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn balanced(value: &str) -> bool {
    value.starts_with('[') && value.trim_end().ends_with(']')
}

fn parse_string(value: &str) -> Result<String, String> {
    value
        .trim()
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("value `{value}` is not a quoted string"))
}

fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .trim()
        .strip_prefix('[')
        .and_then(|v| v.trim_end().strip_suffix(']'))
        .ok_or_else(|| "expected a [\"..\"] string array".to_string())?;
    let mut items = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        let s = part
            .strip_prefix('"')
            .and_then(|p| p.strip_suffix('"'))
            .ok_or_else(|| format!("array item `{part}` is not a quoted string"))?;
        items.push(s.to_string());
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multi_set_config() {
        let cfg = Config::parse(
            "# comment\n\
             [set.determinism]\n\
             paths = [\n  \"crates/sim/src\", # inline comment\n  \"crates/core/src\",\n]\n\
             rules = [\"no-instant-now\", \"no-hash-collections\"]\n\
             \n\
             [set.panics]\n\
             paths = [\"crates/runtime/src\"]\n\
             rules = [\"no-unwrap\"]\n",
        )
        .unwrap();
        assert_eq!(cfg.sets.len(), 2);
        assert_eq!(cfg.sets[0].paths.len(), 2);
        assert_eq!(
            cfg.paths_with_rule("no-instant-now"),
            vec!["crates/sim/src", "crates/core/src"]
        );
        assert!(cfg.paths_with_rule("no-unwrap") == vec!["crates/runtime/src"]);
    }

    #[test]
    fn rejects_unknown_rule() {
        let err = Config::parse(
            "[set.x]\npaths = [\"a\"]\nrules = [\"no-such-rule\"]\n",
        )
        .unwrap_err();
        assert!(err.contains("no-such-rule"), "{err}");
    }

    #[test]
    fn rejects_key_outside_table_and_empty_sets() {
        assert!(Config::parse("paths = [\"a\"]\n").is_err());
        assert!(Config::parse("[set.x]\npaths = [\"a\"]\n").is_err());
    }

    #[test]
    fn parses_units_and_observers() {
        let cfg = Config::parse(
            "[set.x]\npaths = [\"a\"]\nrules = [\"unit-mismatch\"]\n\
             [units]\nheld = \"blocks\" # annotation\ndemand = \"tokens\"\n\
             [observers]\nnames = [\"occupancy\", \"trace_buf\"]\n",
        )
        .unwrap();
        assert_eq!(cfg.units.get("held"), Some(&Unit::Blocks));
        assert_eq!(cfg.units.get("demand"), Some(&Unit::Tokens));
        assert_eq!(cfg.observers, vec!["occupancy", "trace_buf"]);
    }

    #[test]
    fn rejects_bad_unit_and_unknown_table() {
        assert!(Config::parse("[units]\nx = \"furlongs\"\n").is_err());
        assert!(Config::parse("[nonsense]\nx = \"y\"\n").is_err());
        assert!(Config::parse("[observers]\nother = [\"x\"]\n").is_err());
    }
}
