//! Findings and the ratchet baseline.
//!
//! The ratchet makes the lint pass adoptable without a flag day: the
//! committed baseline records how many findings each `(rule, file)` pair
//! is *allowed* to have, CI fails only when a pair exceeds its baseline
//! (a **new** finding), and `--update-baseline` re-records the current
//! state once findings are fixed or deliberately accepted. This
//! repository's baseline is empty — the gate is "no unsuppressed
//! findings" — but the machinery keeps that a policy, not a hard-coding.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Finding {
    /// Repo-root-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule name.
    pub rule: String,
    /// What fired, with a source excerpt.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A finding suppressed by an `analyzer: allow` escape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Suppressed {
    /// The finding that would have fired.
    pub finding: Finding,
    /// The escape's written justification.
    pub justification: String,
}

/// One baseline record: `(rule, file)` may have up to `count` findings.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineEntry {
    /// Rule name.
    pub rule: String,
    /// Repo-root-relative file.
    pub file: String,
    /// Tolerated finding count.
    pub count: usize,
}

/// The committed ratchet baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<(String, String), usize>,
}

/// Result of comparing current findings against the baseline.
#[derive(Debug, Clone, Default)]
pub struct RatchetDiff {
    /// Findings beyond the baseline — these fail CI. For a `(rule, file)`
    /// pair over budget, the *entire* pair's findings are listed (line
    /// numbers shift; the analyzer cannot know which one is new).
    pub new: Vec<Finding>,
    /// Baseline entries now over-provisioned (fixed findings); a hint to
    /// re-run `--update-baseline`, never a failure.
    pub fixed: Vec<BaselineEntry>,
}

impl Baseline {
    /// An empty baseline (every finding is new).
    pub fn empty() -> Self {
        Baseline::default()
    }

    /// Build a baseline tolerating exactly the given findings.
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut counts = BTreeMap::new();
        for f in findings {
            *counts.entry((f.rule.clone(), f.file.clone())).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Parse the committed JSON form.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let entries: Vec<BaselineEntry> =
            serde_json::from_str(text).map_err(|e| format!("bad baseline JSON: {e}"))?;
        let mut counts = BTreeMap::new();
        for e in entries {
            counts.insert((e.rule, e.file), e.count);
        }
        Ok(Baseline { counts })
    }

    /// Load from disk; a missing file is the empty baseline.
    pub fn load(path: &Path) -> Result<Self, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Baseline::from_json(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::empty()),
            Err(e) => Err(format!("cannot read {}: {e}", path.display())),
        }
    }

    /// Serialize to the committed JSON form (sorted, stable).
    pub fn to_json(&self) -> String {
        let entries: Vec<BaselineEntry> = self
            .counts
            .iter()
            .map(|((rule, file), count)| BaselineEntry {
                rule: rule.clone(),
                file: file.clone(),
                count: *count,
            })
            .collect();
        // analyzer: allow(no-expect) — serializing a plain vec of
        // (string, string, usize) entries cannot fail.
        let mut s = serde_json::to_string_pretty(&entries).expect("baseline serializes");
        s.push('\n');
        s
    }

    /// Number of tolerated findings in total.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Compare current findings against the baseline.
    pub fn diff(&self, findings: &[Finding]) -> RatchetDiff {
        let mut current: BTreeMap<(String, String), Vec<&Finding>> = BTreeMap::new();
        for f in findings {
            current
                .entry((f.rule.clone(), f.file.clone()))
                .or_default()
                .push(f);
        }
        let mut diff = RatchetDiff::default();
        for (key, group) in &current {
            let budget = self.counts.get(key).copied().unwrap_or(0);
            if group.len() > budget {
                diff.new.extend(group.iter().map(|f| (*f).clone()));
            }
        }
        for (key, &budget) in &self.counts {
            let have = current.get(key).map(Vec::len).unwrap_or(0);
            if have < budget {
                diff.fixed.push(BaselineEntry {
                    rule: key.0.clone(),
                    file: key.1.clone(),
                    count: budget - have,
                });
            }
        }
        diff.new.sort();
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &str, file: &str, line: usize) -> Finding {
        Finding {
            rule: rule.into(),
            file: file.into(),
            line,
            message: "m".into(),
        }
    }

    #[test]
    fn empty_baseline_flags_everything() {
        let d = Baseline::empty().diff(&[f("r", "a.rs", 1)]);
        assert_eq!(d.new.len(), 1);
        assert!(d.fixed.is_empty());
    }

    #[test]
    fn baseline_tolerates_and_ratchets() {
        let base = Baseline::from_findings(&[f("r", "a.rs", 1)]);
        // Same count, different line: tolerated (lines shift).
        assert!(base.diff(&[f("r", "a.rs", 99)]).new.is_empty());
        // One more in the same file: the whole pair is reported.
        assert_eq!(base.diff(&[f("r", "a.rs", 1), f("r", "a.rs", 2)]).new.len(), 2);
        // Fixed findings show up as over-provisioned, not failures.
        let d = base.diff(&[]);
        assert!(d.new.is_empty());
        assert_eq!(d.fixed.len(), 1);
    }

    #[test]
    fn json_round_trip() {
        let base = Baseline::from_findings(&[
            f("r1", "a.rs", 1),
            f("r1", "a.rs", 2),
            f("r2", "b.rs", 3),
        ]);
        let text = base.to_json();
        let back = Baseline::from_json(&text).unwrap();
        assert_eq!(back, base);
        assert_eq!(back.total(), 3);
    }
}
