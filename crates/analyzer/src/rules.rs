//! The lint rules and their registry.
//!
//! Each rule is a pure function over one masked source line (see
//! [`crate::scan`]); rules never see comments, strings, or test-scoped
//! code. Rule names are the stable identifiers used in `analyzer.toml`,
//! in `// analyzer: allow(<rule>)` escapes, and in the ratchet baseline.

use crate::scan::find_word;

/// A single rule: stable name, what it protects, and the check.
pub struct Rule {
    /// Stable identifier (config / allow / baseline key).
    pub name: &'static str,
    /// One-line description of the invariant the rule protects.
    pub description: &'static str,
    /// Returns a message when the masked line violates the rule.
    pub check: fn(&str) -> Option<String>,
}

/// Every rule the analyzer knows, in documentation order.
pub fn registry() -> &'static [Rule] {
    &[
        Rule {
            name: "no-instant-now",
            description: "determinism: simulated results must not read the wall clock \
                          (`Instant::now`)",
            check: check_instant_now,
        },
        Rule {
            name: "no-system-time",
            description: "determinism: simulated results must not read `SystemTime`",
            check: check_system_time,
        },
        Rule {
            name: "no-hash-collections",
            description: "determinism: `HashMap`/`HashSet` iteration order can leak into \
                          serialized reports — use Vec/BTreeMap or index tables",
            check: check_hash_collections,
        },
        Rule {
            name: "f64-sort-total-cmp",
            description: "determinism: f64 sorts must use `total_cmp`, not `partial_cmp` \
                          (NaN makes the comparator non-total)",
            check: check_f64_sort,
        },
        Rule {
            name: "no-unwrap",
            description: "panic-safety: runtime failures must route through \
                          RuntimeError/ExecError, not `.unwrap()`",
            check: check_unwrap,
        },
        Rule {
            name: "no-expect",
            description: "panic-safety: runtime failures must route through \
                          RuntimeError/ExecError, not `.expect(..)`",
            check: check_expect,
        },
        Rule {
            name: "no-panic",
            description: "panic-safety: `panic!` in supervised code bypasses the \
                          structured failure surface",
            check: check_panic,
        },
        Rule {
            name: "no-todo",
            description: "panic-safety: `todo!` must not reach supervised code",
            check: check_todo,
        },
        Rule {
            name: "no-unimplemented",
            description: "panic-safety: `unimplemented!` must not reach supervised code",
            check: check_unimplemented,
        },
        Rule {
            name: "lossy-float-cast",
            description: "accounting: a lossy float→int `as` cast in accounting code \
                          needs a written justification (range, sign, rounding intent)",
            check: check_lossy_float_cast,
        },
    ]
}

/// Look a rule up by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    registry().iter().find(|r| r.name == name)
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn check_instant_now(code: &str) -> Option<String> {
    // Every occurrence matters: `fn f() -> Instant { Instant::now() }` has
    // an innocent `Instant` before the offending call.
    let mut from = 0;
    while let Some(at) = find_word(&code[from..], "Instant").map(|p| from + p) {
        let rest = code[at + "Instant".len()..].trim_start();
        if rest.starts_with("::") && rest[2..].trim_start().starts_with("now") {
            return Some("reads the wall clock via `Instant::now`".to_string());
        }
        from = at + "Instant".len();
    }
    None
}

fn check_system_time(code: &str) -> Option<String> {
    find_word(code, "SystemTime").map(|_| "uses `SystemTime`".to_string())
}

fn check_hash_collections(code: &str) -> Option<String> {
    for word in ["HashMap", "HashSet"] {
        if find_word(code, word).is_some() {
            return Some(format!(
                "uses `{word}` (iteration order is nondeterministic)"
            ));
        }
    }
    None
}

fn check_f64_sort(code: &str) -> Option<String> {
    let sorts = ["sort_by", "sort_unstable_by", "sort_by_cached_key"];
    if sorts.iter().any(|s| find_word(code, s).is_some())
        && find_word(code, "partial_cmp").is_some()
    {
        Some("float sort via `partial_cmp` — use `total_cmp`".to_string())
    } else {
        None
    }
}

/// Match `.name` followed (past whitespace) by `(`, with `name` ending at
/// a word boundary. Returns true if found.
fn method_call(code: &str, name: &str) -> bool {
    let pat = format!(".{name}");
    let mut from = 0;
    while let Some(pos) = code[from..].find(&pat) {
        let at = from + pos;
        let after = &code[at + pat.len()..];
        let boundary = !after.chars().next().map(is_ident).unwrap_or(false);
        if boundary && after.trim_start().starts_with('(') {
            return true;
        }
        from = at + pat.len();
    }
    false
}

fn check_unwrap(code: &str) -> Option<String> {
    if method_call(code, "unwrap") {
        Some("`.unwrap()` on a fallible value".to_string())
    } else {
        None
    }
}

fn check_expect(code: &str) -> Option<String> {
    if method_call(code, "expect") {
        Some("`.expect(..)` on a fallible value".to_string())
    } else {
        None
    }
}

fn bang_macro(code: &str, name: &str) -> bool {
    let mut from = 0;
    while let Some(at) = find_word(&code[from..], name) {
        let abs = from + at;
        if code[abs + name.len()..].trim_start().starts_with('!') {
            return true;
        }
        from = abs + name.len();
    }
    false
}

fn check_panic(code: &str) -> Option<String> {
    bang_macro(code, "panic").then(|| "`panic!` invocation".to_string())
}

fn check_todo(code: &str) -> Option<String> {
    bang_macro(code, "todo").then(|| "`todo!` invocation".to_string())
}

fn check_unimplemented(code: &str) -> Option<String> {
    bang_macro(code, "unimplemented").then(|| "`unimplemented!` invocation".to_string())
}

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Flag float→int `as` casts the scanner can prove are float-sourced:
/// `expr.ceil()/floor()/round() as uN`, or a parenthesized source whose
/// text visibly involves floats (`f64`/`f32`, a float literal, or a
/// rounding call).
fn check_lossy_float_cast(code: &str) -> Option<String> {
    let mut from = 0;
    while let Some(at) = find_word(&code[from..], "as") {
        let abs = from + at;
        from = abs + 2;
        let after = code[abs + 2..].trim_start();
        let Some(ty) = INT_TYPES.iter().find(|t| {
            after.starts_with(**t)
                && !after[t.len()..].chars().next().map(is_ident).unwrap_or(false)
        }) else {
            continue;
        };
        let before = code[..abs].trim_end();
        if !before.ends_with(')') {
            continue; // bare `ident as uN` — source type unknowable here
        }
        // Find the matching open paren of the trailing `)`.
        let bytes: Vec<char> = before.chars().collect();
        let mut depth = 0i32;
        let mut open = None;
        for (i, &c) in bytes.iter().enumerate().rev() {
            match c {
                ')' => depth += 1,
                '(' => {
                    depth -= 1;
                    if depth == 0 {
                        open = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        let open = open?;
        let inner: String = bytes[open + 1..bytes.len() - 1].iter().collect();
        let callee: String = {
            let head: String = bytes[..open].iter().collect();
            let trimmed = head.trim_end();
            trimmed
                .chars()
                .rev()
                .take_while(|c| is_ident(*c))
                .collect::<String>()
                .chars()
                .rev()
                .collect()
        };
        let rounding = ["ceil", "floor", "round"].contains(&callee.as_str());
        let floaty = inner.contains("f64")
            || inner.contains("f32")
            || inner.contains(".ceil(")
            || inner.contains(".floor(")
            || inner.contains(".round(")
            || has_float_literal(&inner);
        if rounding || floaty {
            return Some(format!(
                "lossy float→int cast (`.. as {ty}`) — justify range/sign or rework"
            ));
        }
    }
    None
}

/// A `digits.digits` float literal appears in the text.
fn has_float_literal(s: &str) -> bool {
    let b: Vec<char> = s.chars().collect();
    for i in 0..b.len() {
        if b[i] == '.'
            && i > 0
            && b[i - 1].is_ascii_digit()
            && b.get(i + 1).map(|c| c.is_ascii_digit()).unwrap_or(false)
        {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fires(rule: &str, code: &str) -> bool {
        (rule_by_name(rule).unwrap().check)(code).is_some()
    }

    #[test]
    fn instant_now_variants() {
        assert!(fires("no-instant-now", "let t = Instant::now();"));
        assert!(fires("no-instant-now", "let t = std::time::Instant::now();"));
        assert!(!fires("no-instant-now", "let d = deadline - Instant::elapsed(&x);"));
        assert!(!fires("no-instant-now", "let x = now();"));
    }

    #[test]
    fn hash_collections() {
        assert!(fires("no-hash-collections", "use std::collections::HashMap;"));
        assert!(fires("no-hash-collections", "let s: HashSet<u64> = x;"));
        assert!(!fires("no-hash-collections", "let m: BTreeMap<u64, u64> = x;"));
    }

    #[test]
    fn unwrap_and_expect() {
        assert!(fires("no-unwrap", "let x = y.unwrap();"));
        assert!(fires("no-unwrap", "let x = y.unwrap ( ) ;"));
        assert!(!fires("no-unwrap", "let x = y.unwrap_or_else(|| 0);"));
        assert!(fires("no-expect", "let x = y.expect(\"msg\");"));
        assert!(!fires("no-expect", "let x = expected.pop();"));
    }

    #[test]
    fn bang_macros() {
        assert!(fires("no-panic", "panic!(\"boom\")"));
        assert!(fires("no-panic", "std::panic!(\"boom\")"));
        assert!(!fires("no-panic", "std::panic::catch_unwind(f)"));
        assert!(!fires("no-panic", "fn panic_detail() {}"));
        assert!(fires("no-todo", "todo!()"));
        assert!(fires("no-unimplemented", "unimplemented!()"));
        assert!(!fires("no-todo", "let todos = 3;"));
    }

    #[test]
    fn f64_sort() {
        assert!(fires(
            "f64-sort-total-cmp",
            "v.sort_by(|a, b| a.partial_cmp(b).unwrap());"
        ));
        assert!(!fires("f64-sort-total-cmp", "v.sort_by(f64::total_cmp);"));
        assert!(!fires("f64-sort-total-cmp", "a.partial_cmp(&b)"));
    }

    #[test]
    fn lossy_casts() {
        assert!(fires("lossy-float-cast", "let b = (x * 0.9).ceil() as u64;"));
        assert!(fires("lossy-float-cast", "let s = ((a / b).round() as u32).min(c);"));
        assert!(fires("lossy-float-cast", "let n = (blocks as f64 * w) as u64;"));
        assert!(!fires("lossy-float-cast", "let n = tokens as f64;"));
        assert!(!fires("lossy-float-cast", "let n = blocks as u64;"));
        assert!(!fires("lossy-float-cast", "let n = (a + b) as u64;"));
    }

    #[test]
    fn registry_names_are_unique() {
        let mut names: Vec<_> = registry().iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), registry().len());
    }
}
