//! The lint rules and their registry.
//!
//! Each rule is a pure function over a [`FileModel`] — the comment-free
//! token stream of one file (see [`crate::lexer`], [`crate::model`]).
//! Rules never see comments or string contents, and the driver filters
//! hits in test scopes and applies allow escapes. Rule names are the
//! stable identifiers used in `analyzer.toml`, in
//! `// analyzer: allow(<rule>)` escapes, and in the ratchet baseline.
//!
//! Rules come in two families:
//!
//! * **syntactic** — re-hosts of the v1 masked-scanner rules
//!   (`no-instant-now` … `lossy-float-cast`), now token-exact;
//! * **semantic** — rules that track a little state across the file:
//!   unit inference for the accounting-dimension check
//!   ([`check_unit_mismatch`]), collection-type tracking for
//!   hash-order iteration, float-typed-name tracking for bare casts,
//!   and observer-gate branch analysis.

use crate::lexer::{TokKind, Token};
use crate::model::FileModel;
use std::collections::BTreeMap;

/// One rule violation: the line it anchors to plus a message.
#[derive(Debug, Clone)]
pub struct Hit {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong (excerpt appended by the driver).
    pub message: String,
}

/// Shared context rules may consult: the `[units]` annotation table and
/// the `[observers]` allow-list from `analyzer.toml`.
pub struct RuleCtx<'a> {
    /// Explicit name → unit annotations (override suffix inference).
    pub units: &'a BTreeMap<String, Unit>,
    /// Identifiers an observer branch may legally mutate (buffers that
    /// exist only to hold observer output).
    pub observers: &'a [String],
}

impl RuleCtx<'_> {
    /// An empty context (unit table and observer list both empty).
    pub fn empty() -> RuleCtx<'static> {
        static EMPTY_UNITS: BTreeMap<String, Unit> = BTreeMap::new();
        RuleCtx {
            units: &EMPTY_UNITS,
            observers: &[],
        }
    }
}

/// An accounting dimension, inferred from a name or annotated in
/// `analyzer.toml`'s `[units]` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Token counts (prompt/decode/resident tokens).
    Tokens,
    /// KV-cache blocks.
    Blocks,
    /// Virtual seconds.
    Seconds,
    /// Raw byte sizes.
    Bytes,
    /// Dimensionless counts (requests, iterations).
    Count,
}

impl Unit {
    /// The unit's config-file spelling.
    pub fn name(self) -> &'static str {
        match self {
            Unit::Tokens => "tokens",
            Unit::Blocks => "blocks",
            Unit::Seconds => "seconds",
            Unit::Bytes => "bytes",
            Unit::Count => "count",
        }
    }

    /// Parse the config-file spelling.
    pub fn parse(s: &str) -> Option<Unit> {
        match s {
            "tokens" => Some(Unit::Tokens),
            "blocks" => Some(Unit::Blocks),
            "seconds" => Some(Unit::Seconds),
            "bytes" => Some(Unit::Bytes),
            "count" => Some(Unit::Count),
            _ => None,
        }
    }
}

/// A single rule: stable name, what it protects, and the check.
pub struct Rule {
    /// Stable identifier (config / allow / baseline key).
    pub name: &'static str,
    /// One-line description of the invariant the rule protects.
    pub description: &'static str,
    /// The longer story `--explain` prints: why the rule exists here.
    pub rationale: &'static str,
    /// A minimal firing example, shown by `--explain`.
    pub example: &'static str,
    /// Returns every violation in the file (driver dedupes per line).
    pub check: fn(&FileModel, &RuleCtx) -> Vec<Hit>,
}

/// Every rule the analyzer knows, in documentation order.
pub fn registry() -> &'static [Rule] {
    &[
        Rule {
            name: "no-instant-now",
            description: "determinism: simulated results must not read the wall clock \
                          (`Instant::now`)",
            rationale: "The simulator's clock is virtual; every duration must derive from \
                        the cost model so replays are bit-identical. A wall-clock read \
                        anywhere in a result path makes output depend on host load.",
            example: "let t = Instant::now();",
            check: check_instant_now,
        },
        Rule {
            name: "no-system-time",
            description: "determinism: simulated results must not read `SystemTime`",
            rationale: "Same invariant as no-instant-now: `SystemTime` (and \
                        `UNIX_EPOCH` arithmetic) injects host time into simulated \
                        output, breaking replay determinism.",
            example: "let t = SystemTime::now();",
            check: check_system_time,
        },
        Rule {
            name: "no-hash-collections",
            description: "determinism: `HashMap`/`HashSet` iteration order can leak into \
                          serialized reports — use Vec/BTreeMap or index tables",
            rationale: "std's hashers are randomly seeded per process; iterating a hash \
                        collection yields a different order every run. Any such order \
                        reaching a report, schedule, or tie-break makes runs diverge. \
                        Deterministic crates use Vec, BTreeMap, or dense index tables.",
            example: "use std::collections::HashMap;",
            check: check_hash_collections,
        },
        Rule {
            name: "f64-sort-total-cmp",
            description: "determinism: f64 sorts must use `total_cmp`, not `partial_cmp` \
                          (NaN makes the comparator non-total)",
            rationale: "`partial_cmp` on floats returns None for NaN, and the usual \
                        `.unwrap()` panics — or worse, a `unwrap_or(Equal)` silently \
                        gives an inconsistent comparator and an implementation-defined \
                        order. `f64::total_cmp` is total and deterministic.",
            example: "v.sort_by(|a, b| a.partial_cmp(b).unwrap());",
            check: check_f64_sort,
        },
        Rule {
            name: "no-unwrap",
            description: "panic-safety: runtime failures must route through \
                          RuntimeError/ExecError, not `.unwrap()`",
            rationale: "Supervised code (runtime, engine execution plane) must convert \
                        every failure into the structured error surface so the \
                        supervisor can record and recover it; a panic tears down the \
                        worker instead.",
            example: "let x = rx.recv().unwrap();",
            check: check_unwrap,
        },
        Rule {
            name: "no-expect",
            description: "panic-safety: runtime failures must route through \
                          RuntimeError/ExecError, not `.expect(..)`",
            rationale: "`.expect` is `.unwrap` with a nicer epitaph — the process still \
                        dies. Route the failure into RuntimeError/ExecError instead.",
            example: "let x = rx.recv().expect(\"worker gone\");",
            check: check_expect,
        },
        Rule {
            name: "no-panic",
            description: "panic-safety: `panic!` in supervised code bypasses the \
                          structured failure surface",
            rationale: "An explicit `panic!` in supervised code is an unstructured \
                        crash the fault-injection harness cannot model. Return an \
                        error variant.",
            example: "panic!(\"unreachable state\");",
            check: check_panic,
        },
        Rule {
            name: "no-todo",
            description: "panic-safety: `todo!` must not reach supervised code",
            rationale: "`todo!` compiles and then detonates at runtime; unfinished \
                        paths must fail to compile or return a structured error.",
            example: "todo!()",
            check: check_todo,
        },
        Rule {
            name: "no-unimplemented",
            description: "panic-safety: `unimplemented!` must not reach supervised code",
            rationale: "Like no-todo: a runtime landmine where the type system should \
                        have refused the program, or an error should be returned.",
            example: "unimplemented!()",
            check: check_unimplemented,
        },
        Rule {
            name: "lossy-float-cast",
            description: "accounting: a lossy float→int `as` cast in accounting code \
                          needs a written justification (range, sign, rounding intent)",
            rationale: "`as` saturates, truncates toward zero, and maps NaN to 0 — \
                        three silent behaviours in one keyword. Accounting code \
                        (tokens, blocks, virtual time) must state which of them the \
                        call site relies on, via an allow escape.",
            example: "let blocks = (tokens as f64 / block_size as f64).ceil() as u64;",
            check: check_lossy_float_cast,
        },
        Rule {
            name: "unit-mismatch",
            description: "accounting: `+`/`-`/comparison between values of different \
                          accounting dimensions (tokens vs blocks vs seconds vs bytes)",
            rationale: "The engine tracks the same quantities in several dimensions \
                        (resident *tokens*, allocator *blocks*, virtual *seconds*); \
                        adding or comparing across dimensions is the bug class the \
                        reuse_discount/resident_tokens split exists to prevent. Units \
                        are inferred from `_tokens`/`_blocks`/`_s`/`_bytes`/`_count` \
                        name suffixes plus the `[units]` table in analyzer.toml.",
            example: "let need = prompt_tokens + retained_blocks;",
            check: check_unit_mismatch,
        },
        Rule {
            name: "hash-order-iteration",
            description: "determinism: iterating a `HashMap`/`HashSet` (tracked by \
                          declared type, not substring) yields nondeterministic order",
            rationale: "Where hash collections are allowed (pure membership tests, \
                        model-checker seen-sets), *iterating* one is still forbidden: \
                        the visit order is seeded per process. This rule tracks which \
                        names are declared as hash collections and flags `for .. in` \
                        and `.iter()/.keys()/.values()/.drain()` over them.",
            example: "for (k, v) in seen.iter() { emit(k, v); }",
            check: check_hash_order_iteration,
        },
        Rule {
            name: "float-int-cast",
            description: "accounting: bare `name as uN` where `name` is known to be \
                          floating-point truncates silently",
            rationale: "lossy-float-cast only sees casts whose source expression is \
                        syntactically float. This rule tracks names *declared* f64/f32 \
                        (annotations and float-literal lets) and flags bare \
                        `name as u64`-style casts of them, which the paren-based rule \
                        cannot see.",
            example: "let ratio: f64 = 0.5; let n = ratio as u64;",
            check: check_float_int_cast,
        },
        Rule {
            name: "observer-purity",
            description: "observability: a `record_*` observer gate must be branch-only \
                          — no engine state mutated inside its branches",
            rationale: "Toggling trace/metrics/occupancy recording must never perturb \
                        the schedule: `input(off) = input(on) + reused` and every \
                        other replay invariant depend on it. Inside any branch \
                        conditioned on a `record_*` gate, only the observer sinks \
                        listed in analyzer.toml `[observers]` may be assigned to; \
                        gates themselves are construction-time-only.",
            example: "if cfg.record_metrics { self.step_budget = 0; }",
            check: check_observer_purity,
        },
    ]
}

/// Look a rule up by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    registry().iter().find(|r| r.name == name)
}

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

const PRIMITIVES: [&str; 15] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    "f32", "f64", "bool",
];

/// Index of the opener matching the closer at `close` (`)`/`]`/`}`),
/// scanning backwards and treating all three bracket kinds as one
/// nesting structure.
fn match_back(code: &[Token], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = close;
    loop {
        let t = &code[i];
        if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth += 1;
        } else if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        if i == 0 {
            return None;
        }
        i -= 1;
    }
}

/// Index of the closer matching the opener at `open`.
fn match_fwd(code: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

fn check_instant_now(f: &FileModel, _: &RuleCtx) -> Vec<Hit> {
    let c = &f.code;
    let mut hits = Vec::new();
    for i in 0..c.len() {
        if c[i].is_ident("Instant")
            && c.get(i + 1).map(|t| t.is_punct("::")).unwrap_or(false)
            && c.get(i + 2).map(|t| t.is_ident("now")).unwrap_or(false)
        {
            hits.push(Hit {
                line: c[i].line,
                message: "reads the wall clock via `Instant::now`".to_string(),
            });
        }
    }
    hits
}

fn check_system_time(f: &FileModel, _: &RuleCtx) -> Vec<Hit> {
    f.code
        .iter()
        .filter(|t| t.is_ident("SystemTime"))
        .map(|t| Hit {
            line: t.line,
            message: "uses `SystemTime`".to_string(),
        })
        .collect()
}

fn check_hash_collections(f: &FileModel, _: &RuleCtx) -> Vec<Hit> {
    f.code
        .iter()
        .filter(|t| t.is_ident("HashMap") || t.is_ident("HashSet"))
        .map(|t| Hit {
            line: t.line,
            message: format!("uses `{}` (iteration order is nondeterministic)", t.text),
        })
        .collect()
}

fn check_f64_sort(f: &FileModel, _: &RuleCtx) -> Vec<Hit> {
    let sorts = ["sort_by", "sort_unstable_by", "sort_by_cached_key"];
    let mut sort_lines: Vec<usize> = Vec::new();
    let mut cmp_lines: Vec<usize> = Vec::new();
    for t in &f.code {
        if sorts.iter().any(|s| t.is_ident(s)) {
            sort_lines.push(t.line);
        }
        if t.is_ident("partial_cmp") {
            cmp_lines.push(t.line);
        }
    }
    sort_lines
        .into_iter()
        .filter(|l| cmp_lines.contains(l))
        .map(|line| Hit {
            line,
            message: "float sort via `partial_cmp` — use `total_cmp`".to_string(),
        })
        .collect()
}

/// `.name(` as three consecutive tokens.
fn method_calls(f: &FileModel, name: &str) -> Vec<usize> {
    let c = &f.code;
    let mut lines = Vec::new();
    for i in 0..c.len() {
        if c[i].is_punct(".")
            && c.get(i + 1).map(|t| t.is_ident(name)).unwrap_or(false)
            && c.get(i + 2).map(|t| t.is_punct("(")).unwrap_or(false)
        {
            lines.push(c[i + 1].line);
        }
    }
    lines
}

fn check_unwrap(f: &FileModel, _: &RuleCtx) -> Vec<Hit> {
    method_calls(f, "unwrap")
        .into_iter()
        .map(|line| Hit {
            line,
            message: "`.unwrap()` on a fallible value".to_string(),
        })
        .collect()
}

fn check_expect(f: &FileModel, _: &RuleCtx) -> Vec<Hit> {
    method_calls(f, "expect")
        .into_iter()
        .map(|line| Hit {
            line,
            message: "`.expect(..)` on a fallible value".to_string(),
        })
        .collect()
}

/// `name` ident directly followed by a lone `!` punct (macro invocation;
/// `!=` lexes as one token so it never matches).
fn bang_macro(f: &FileModel, name: &str) -> Vec<usize> {
    let c = &f.code;
    let mut lines = Vec::new();
    for i in 0..c.len() {
        if c[i].is_ident(name) && c.get(i + 1).map(|t| t.is_punct("!")).unwrap_or(false) {
            lines.push(c[i].line);
        }
    }
    lines
}

fn check_panic(f: &FileModel, _: &RuleCtx) -> Vec<Hit> {
    bang_macro(f, "panic")
        .into_iter()
        .map(|line| Hit {
            line,
            message: "`panic!` invocation".to_string(),
        })
        .collect()
}

fn check_todo(f: &FileModel, _: &RuleCtx) -> Vec<Hit> {
    bang_macro(f, "todo")
        .into_iter()
        .map(|line| Hit {
            line,
            message: "`todo!` invocation".to_string(),
        })
        .collect()
}

fn check_unimplemented(f: &FileModel, _: &RuleCtx) -> Vec<Hit> {
    bang_macro(f, "unimplemented")
        .into_iter()
        .map(|line| Hit {
            line,
            message: "`unimplemented!` invocation".to_string(),
        })
        .collect()
}

/// Flag float→int `as` casts whose source is provably float:
/// `(..).ceil()/floor()/round() as uN`, or a parenthesized source whose
/// tokens visibly involve floats (float literal, `f64`/`f32`, or a
/// rounding method call inside the parens).
fn check_lossy_float_cast(f: &FileModel, _: &RuleCtx) -> Vec<Hit> {
    let c = &f.code;
    let mut hits = Vec::new();
    for i in 0..c.len() {
        if !c[i].is_ident("as") {
            continue;
        }
        let Some(ty) = c
            .get(i + 1)
            .filter(|t| t.kind == TokKind::Ident && INT_TYPES.contains(&t.text.as_str()))
        else {
            continue;
        };
        if i == 0 || !c[i - 1].is_punct(")") {
            continue; // bare `ident as uN` — source type unknowable here
        }
        let Some(open) = match_back(c, i - 1) else {
            continue;
        };
        let inner = &c[open + 1..i - 1];
        let callee = if open > 0 && c[open - 1].kind == TokKind::Ident {
            c[open - 1].text.as_str()
        } else {
            ""
        };
        let rounding = ["ceil", "floor", "round"].contains(&callee);
        let floaty = inner.iter().any(|t| {
            t.kind == TokKind::Float || t.is_ident("f64") || t.is_ident("f32")
        }) || inner.windows(3).any(|w| {
            w[0].is_punct(".")
                && ["ceil", "floor", "round"].iter().any(|m| w[1].is_ident(m))
                && w[2].is_punct("(")
        });
        if rounding || floaty {
            hits.push(Hit {
                line: c[i].line,
                message: format!(
                    "lossy float→int cast (`.. as {}`) — justify range/sign or rework",
                    ty.text
                ),
            });
        }
    }
    hits
}

/// Infer a unit from an identifier: the `[units]` table wins, then the
/// last `_`-separated segment is matched against the suffix conventions.
/// The bare names `s`/`sec`/`secs` are excluded (too short to mean
/// seconds on their own).
fn unit_of_name(name: &str, ctx: &RuleCtx) -> Option<Unit> {
    if let Some(u) = ctx.units.get(name) {
        return Some(*u);
    }
    let seg = name.rsplit('_').next().unwrap_or("");
    if seg == name && matches!(seg, "s" | "sec" | "secs") {
        return None;
    }
    match seg {
        "tokens" => Some(Unit::Tokens),
        "blocks" => Some(Unit::Blocks),
        "bytes" => Some(Unit::Bytes),
        "s" | "sec" | "secs" | "seconds" => Some(Unit::Seconds),
        "count" | "counts" => Some(Unit::Count),
        _ => None,
    }
}

/// Operators the unit checker inspects.
const UNIT_OPS: [&str; 11] = ["+", "-", "+=", "-=", "<", ">", "<=", ">=", "==", "!=", "="];

/// Idents that make a following `-`/`+` a prefix, not a binary operator.
const NON_VALUE_KEYWORDS: [&str; 8] =
    ["return", "in", "if", "else", "match", "while", "break", "continue"];

/// Multiplying or dividing converts units (`tokens * bytes_per_token`,
/// `tokens / block_size`), so a scaled operand has no inferable unit.
fn scaling(t: Option<&Token>) -> bool {
    t.map(|t| t.is_punct("*") || t.is_punct("/")).unwrap_or(false)
}

/// Resolve the unit of the operand ending just before index `op`
/// (exclusive). Returns the unit and the name it came from.
fn left_operand(c: &[Token], op: usize, ctx: &RuleCtx) -> Option<(Unit, String)> {
    let mut j = op.checked_sub(1)?;
    loop {
        let t = &c[j];
        // `x_tokens as u64 + ..` — skip the cast, keep resolving left.
        if t.kind == TokKind::Ident
            && PRIMITIVES.contains(&t.text.as_str())
            && j >= 1
            && c[j - 1].is_ident("as")
        {
            j = j.checked_sub(2)?;
            continue;
        }
        if t.is_punct(")") || t.is_punct("]") {
            let open = match_back(c, j)?;
            if open > 0 && c[open - 1].kind == TokKind::Ident {
                // Call or index: the callee/base name carries the unit
                // (`prefill_tokens()`, `tokens_by_req[i]`) — unless the
                // whole term is scaled by `*`/`/`.
                let callee = &c[open - 1];
                let start = chain_start(c, open - 1);
                if scaling(start.checked_sub(1).map(|p| &c[p])) {
                    return None;
                }
                let u = unit_of_name(&callee.text, ctx)?;
                return Some((u, callee.text.clone()));
            }
            return None; // grouped subexpression — stay conservative
        }
        if t.kind == TokKind::Ident {
            // `let x_tokens: u64 = ..` — the annotation type is not the
            // operand; the name before the `:` is.
            if PRIMITIVES.contains(&t.text.as_str())
                && j >= 2
                && c[j - 1].is_punct(":")
                && c[j - 2].kind == TokKind::Ident
            {
                let name = &c[j - 2];
                let u = unit_of_name(&name.text, ctx)?;
                return Some((u, name.text.clone()));
            }
            let start = chain_start(c, j);
            if scaling(start.checked_sub(1).map(|p| &c[p])) {
                return None; // `.. * x_tokens` — scaled, unit unknown
            }
            let u = unit_of_name(&t.text, ctx)?;
            return Some((u, t.text.clone()));
        }
        return None; // literal, punct, string — no unit
    }
}

/// Walk `ident (./:: ident)*` backwards from the chain's last ident to
/// its first (`self.pool.resident_tokens` → index of `self`).
fn chain_start(c: &[Token], mut j: usize) -> usize {
    while j >= 2
        && (c[j - 1].is_punct(".") || c[j - 1].is_punct("::"))
        && c[j - 2].kind == TokKind::Ident
    {
        j -= 2;
    }
    j
}

/// Resolve the unit of the operand starting at index `op + 1`.
fn right_operand(c: &[Token], op: usize, ctx: &RuleCtx) -> Option<(Unit, String)> {
    let mut k = op + 1;
    loop {
        let t = c.get(k)?;
        if t.is_punct("&") || t.is_punct("*") || t.is_ident("mut") {
            k += 1;
            continue;
        }
        if t.is_punct("(") {
            // A parenthesized group: a method call on it (`(..).div_ceil`)
            // or a `*`/`/` scale makes the unit unknowable; otherwise
            // descend into the group.
            let close = match_fwd(c, k)?;
            let after = c.get(close + 1);
            if after.map(|t| t.is_punct(".")).unwrap_or(false) || scaling(after) {
                return None;
            }
            k += 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            if NON_VALUE_KEYWORDS.contains(&t.text.as_str()) {
                return None;
            }
            // Walk the field/path chain to its last identifier:
            // `self.resident_tokens`, `alloc::used_blocks`.
            let mut end = k;
            while c.get(end + 1).map(|t| t.is_punct(".") || t.is_punct("::")).unwrap_or(false)
                && c.get(end + 2).map(|t| t.kind == TokKind::Ident).unwrap_or(false)
            {
                end += 2;
            }
            let name = c[end].text.clone();
            // Extend over a call's arguments or an index to the term end.
            let mut term_end = end;
            if c.get(end + 1).map(|t| t.is_punct("(") || t.is_punct("[")).unwrap_or(false) {
                term_end = match_fwd(c, end + 1)?;
            }
            if scaling(c.get(term_end + 1)) {
                return None; // `x_blocks * block_size` — converted, not mixed
            }
            let u = unit_of_name(&name, ctx)?;
            return Some((u, name));
        }
        return None; // literal or other punct — no unit
    }
}

/// The accounting-dimension check: for each arithmetic/comparison/assign
/// operator, resolve a unit for both operands; if both resolve and they
/// differ, fire.
fn check_unit_mismatch(f: &FileModel, ctx: &RuleCtx) -> Vec<Hit> {
    let c = &f.code;
    let mut hits = Vec::new();
    for i in 0..c.len() {
        let t = &c[i];
        if t.kind != TokKind::Punct || !UNIT_OPS.contains(&t.text.as_str()) {
            continue;
        }
        let op = t.text.as_str();
        if op == "<" || op == ">" {
            if angle_is_generic(c, i) {
                continue;
            }
        }
        if (op == "-" || op == "+") && !binary_position(c, i) {
            continue;
        }
        let Some((lu, ln)) = left_operand(c, i, ctx) else {
            continue;
        };
        let Some((ru, rn)) = right_operand(c, i, ctx) else {
            continue;
        };
        if lu != ru {
            hits.push(Hit {
                line: t.line,
                message: format!(
                    "mixed accounting dimensions: `{ln}` is {} but `{rn}` is {} (op `{op}`)",
                    lu.name(),
                    ru.name()
                ),
            });
        }
    }
    hits
}

/// Heuristics separating generic brackets / shifts from comparisons.
fn angle_is_generic(c: &[Token], i: usize) -> bool {
    let t = &c[i];
    let prev = i.checked_sub(1).map(|j| &c[j]);
    let next = c.get(i + 1);
    // `Vec<`, `Option<..>` — an adjacent uppercase-initial ident is a type.
    let upper = |t: &Token| {
        t.kind == TokKind::Ident && t.text.chars().next().map(|c| c.is_ascii_uppercase()).unwrap_or(false)
    };
    if prev.map(upper).unwrap_or(false) || next.map(|n| upper(n)).unwrap_or(false) {
        return true;
    }
    // `::<` turbofish.
    if prev.map(|p| p.is_punct("::")).unwrap_or(false) {
        return true;
    }
    // `<'a` lifetime parameter.
    if next.map(|n| n.kind == TokKind::Lifetime).unwrap_or(false) {
        return true;
    }
    // Shift: two adjacent `<`/`<` or `>`/`>` with no gap.
    let adjacent = |a: &Token, b: &Token| b.start == a.start + 1;
    if let Some(p) = prev {
        if p.text == t.text && p.kind == TokKind::Punct && adjacent(p, t) {
            return true;
        }
    }
    if let Some(n) = next {
        if n.text == t.text && n.kind == TokKind::Punct && adjacent(t, n) {
            return true;
        }
    }
    // `Vec<u64>` closing after a primitive that is *not* an `as` cast.
    if let Some(p) = prev {
        if p.kind == TokKind::Ident
            && PRIMITIVES.contains(&p.text.as_str())
            && !(i >= 2 && c[i - 2].is_ident("as"))
        {
            return true;
        }
    }
    false
}

/// `-`/`+` at `i` is a binary operator (has a value-shaped token before it).
fn binary_position(c: &[Token], i: usize) -> bool {
    let Some(p) = i.checked_sub(1).map(|j| &c[j]) else {
        return false;
    };
    match p.kind {
        TokKind::Ident => !NON_VALUE_KEYWORDS.contains(&p.text.as_str()),
        TokKind::Int | TokKind::Float => true,
        TokKind::Punct => p.is_punct(")") || p.is_punct("]"),
        _ => false,
    }
}

/// Methods whose call on a hash collection observes iteration order.
const HASH_ITER_METHODS: [&str; 7] =
    ["iter", "iter_mut", "keys", "values", "values_mut", "drain", "into_iter"];

/// Track names declared as `HashMap`/`HashSet` (type annotations on
/// fields/params/lets, and `let` initializers mentioning the types),
/// then flag iteration over them.
fn check_hash_order_iteration(f: &FileModel, _: &RuleCtx) -> Vec<Hit> {
    let c = &f.code;
    let mut tracked: Vec<String> = Vec::new();
    for i in 0..c.len() {
        // `name: [& 'a mut] [path::]HashMap<..>`
        if c[i].is_punct(":") && i > 0 && c[i - 1].kind == TokKind::Ident {
            let mut k = i + 1;
            while c
                .get(k)
                .map(|t| t.is_punct("&") || t.kind == TokKind::Lifetime || t.is_ident("mut"))
                .unwrap_or(false)
            {
                k += 1;
            }
            // Walk a `std::collections::HashMap` path to its last ident.
            while c.get(k).map(|t| t.kind == TokKind::Ident).unwrap_or(false)
                && c.get(k + 1).map(|t| t.is_punct("::")).unwrap_or(false)
                && c.get(k + 2).map(|t| t.kind == TokKind::Ident).unwrap_or(false)
            {
                k += 2;
            }
            if c.get(k).map(|t| t.is_ident("HashMap") || t.is_ident("HashSet")).unwrap_or(false)
            {
                tracked.push(c[i - 1].text.clone());
            }
        }
        // `let [mut] name = <expr mentioning HashMap/HashSet> ;`
        if c[i].is_ident("let") {
            let mut k = i + 1;
            if c.get(k).map(|t| t.is_ident("mut")).unwrap_or(false) {
                k += 1;
            }
            let Some(name) = c.get(k).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            if !c.get(k + 1).map(|t| t.is_punct("=")).unwrap_or(false) {
                continue;
            }
            let mut j = k + 2;
            while j < c.len() && !c[j].is_punct(";") {
                if c[j].is_ident("HashMap") || c[j].is_ident("HashSet") {
                    tracked.push(name.text.clone());
                    break;
                }
                j += 1;
            }
        }
    }
    if tracked.is_empty() {
        return Vec::new();
    }
    let mut hits = Vec::new();
    for i in 0..c.len() {
        // `name.iter()` style.
        if c[i].is_punct(".")
            && i > 0
            && c[i - 1].kind == TokKind::Ident
            && tracked.contains(&c[i - 1].text)
            && c.get(i + 1)
                .map(|t| HASH_ITER_METHODS.iter().any(|m| t.is_ident(m)))
                .unwrap_or(false)
            && c.get(i + 2).map(|t| t.is_punct("(")).unwrap_or(false)
        {
            hits.push(Hit {
                line: c[i + 1].line,
                message: format!(
                    "iterates hash collection `{}` via `.{}()` — order is nondeterministic",
                    c[i - 1].text,
                    c[i + 1].text
                ),
            });
        }
        // `for pat in <expr ending in name> {`
        if c[i].is_ident("for") {
            let mut depth = 0i32;
            let mut saw_in = false;
            let mut j = i + 1;
            while j < c.len() {
                let t = &c[j];
                if t.is_punct("(") || t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") {
                    depth -= 1;
                } else if depth == 0 && t.is_ident("in") {
                    saw_in = true;
                } else if depth == 0 && t.is_punct("{") {
                    break;
                } else if depth == 0 && t.is_punct(";") {
                    break; // not a for-loop header after all
                }
                j += 1;
            }
            if saw_in && j < c.len() && j > 0 {
                let before = &c[j - 1];
                if before.kind == TokKind::Ident && tracked.contains(&before.text) {
                    hits.push(Hit {
                        line: c[i].line,
                        message: format!(
                            "iterates hash collection `{}` in a `for` loop — order is \
                             nondeterministic",
                            before.text
                        ),
                    });
                }
            }
        }
    }
    hits
}

/// Track names known to be floats (`name: f64`, `let name = <float
/// literal>`), then flag bare `name as uN` casts of them.
fn check_float_int_cast(f: &FileModel, _: &RuleCtx) -> Vec<Hit> {
    let c = &f.code;
    let mut floats: Vec<String> = Vec::new();
    for i in 0..c.len() {
        if c[i].is_punct(":")
            && i > 0
            && c[i - 1].kind == TokKind::Ident
            && c.get(i + 1).map(|t| t.is_ident("f64") || t.is_ident("f32")).unwrap_or(false)
        {
            floats.push(c[i - 1].text.clone());
        }
        if c[i].is_ident("let") {
            let mut k = i + 1;
            if c.get(k).map(|t| t.is_ident("mut")).unwrap_or(false) {
                k += 1;
            }
            let Some(name) = c.get(k).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            if !c.get(k + 1).map(|t| t.is_punct("=")).unwrap_or(false) {
                continue;
            }
            let mut j = k + 2;
            while j < c.len() && !c[j].is_punct(";") {
                if c[j].kind == TokKind::Float {
                    floats.push(name.text.clone());
                    break;
                }
                j += 1;
            }
        }
    }
    if floats.is_empty() {
        return Vec::new();
    }
    let mut hits = Vec::new();
    for i in 0..c.len() {
        if c[i].is_ident("as")
            && i > 0
            && c[i - 1].kind == TokKind::Ident
            && floats.contains(&c[i - 1].text)
            && c.get(i + 1)
                .map(|t| t.kind == TokKind::Ident && INT_TYPES.contains(&t.text.as_str()))
                .unwrap_or(false)
        {
            hits.push(Hit {
                line: c[i].line,
                message: format!(
                    "`{}` is floating-point — bare `as {}` truncates silently; justify or \
                     round explicitly",
                    c[i - 1].text,
                    c[i + 1].text
                ),
            });
        }
    }
    hits
}

/// Assignment operators an observer branch must not apply to non-sinks.
const ASSIGN_OPS: [&str; 6] = ["=", "+=", "-=", "*=", "/=", "%="];

/// Observer-purity: (a) no `.record_*` gate is reassigned after
/// construction; (b) inside any `if` whose condition reads a `record_*`
/// gate, every assignment's root identifier must be in the `[observers]`
/// allow-list.
fn check_observer_purity(f: &FileModel, ctx: &RuleCtx) -> Vec<Hit> {
    let c = &f.code;
    let mut hits = Vec::new();
    for i in 0..c.len() {
        // (a) `.record_x =` — gates are construction-time-only.
        if c[i].is_punct(".")
            && c.get(i + 1)
                .map(|t| t.kind == TokKind::Ident && t.text.starts_with("record_"))
                .unwrap_or(false)
            && c.get(i + 2).map(|t| t.is_punct("=")).unwrap_or(false)
        {
            hits.push(Hit {
                line: c[i + 1].line,
                message: format!(
                    "observer gate `{}` reassigned after construction — gates are \
                     construction-time-only",
                    c[i + 1].text
                ),
            });
        }
        // (b) gated branches.
        if !c[i].is_ident("if") {
            continue;
        }
        // Find the branch body `{` (paren/bracket depth 0 past the cond).
        let mut depth = 0i32;
        let mut body_open = None;
        let mut reads_gate = false;
        let mut j = i + 1;
        while j < c.len() {
            let t = &c[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && t.is_punct("{") {
                body_open = Some(j);
                break;
            } else if depth == 0 && t.is_punct(";") {
                break;
            } else if t.kind == TokKind::Ident && t.text.starts_with("record_") {
                reads_gate = true;
            }
            j += 1;
        }
        let (Some(open), true) = (body_open, reads_gate) else {
            continue;
        };
        let Some(close) = match_fwd(c, open) else {
            continue;
        };
        scan_observer_block(c, open, close, ctx, &mut hits);
        // An `else { .. }` block runs when the gate is off — mutations
        // there perturb the off-path just the same.
        if c.get(close + 1).map(|t| t.is_ident("else")).unwrap_or(false)
            && c.get(close + 2).map(|t| t.is_punct("{")).unwrap_or(false)
        {
            if let Some(else_close) = match_fwd(c, close + 2) {
                scan_observer_block(c, close + 2, else_close, ctx, &mut hits);
            }
        }
    }
    hits
}

/// Flag assignments to non-observer roots inside `c[open..close]`.
fn scan_observer_block(
    c: &[Token],
    open: usize,
    close: usize,
    ctx: &RuleCtx,
    hits: &mut Vec<Hit>,
) {
    let mut j = open + 1;
    let mut stmt_start = true;
    while j < close {
        let t = &c[j];
        if t.is_punct("{") || t.is_punct("}") || t.is_punct(";") {
            stmt_start = true;
            j += 1;
            continue;
        }
        if stmt_start && t.kind == TokKind::Ident {
            if t.text == "let" {
                // Local bindings are fine — they die with the branch.
                stmt_start = false;
                j += 1;
                continue;
            }
            // Chain `ident(.ident)*` then an assignment operator.
            let mut k = j;
            let mut root: Option<&str> = if t.text == "self" { None } else { Some(&t.text) };
            while c.get(k + 1).map(|t| t.is_punct(".")).unwrap_or(false)
                && c.get(k + 2).map(|t| t.kind == TokKind::Ident).unwrap_or(false)
            {
                k += 2;
                if root.is_none() {
                    root = Some(&c[k].text);
                }
            }
            if c.get(k + 1)
                .map(|t| t.kind == TokKind::Punct && ASSIGN_OPS.contains(&t.text.as_str()))
                .unwrap_or(false)
            {
                let root = root.unwrap_or(&t.text);
                if !ctx.observers.iter().any(|o| o == root) {
                    hits.push(Hit {
                        line: c[k + 1].line,
                        message: format!(
                            "state mutation of `{root}` inside a `record_*` observer branch \
                             (not in the [observers] allow-list)"
                        ),
                    });
                }
            }
        }
        stmt_start = false;
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fires(rule: &str, code: &str) -> bool {
        let f = FileModel::build(code);
        !(rule_by_name(rule).unwrap().check)(&f, &RuleCtx::empty()).is_empty()
    }

    #[test]
    fn instant_now_variants() {
        assert!(fires("no-instant-now", "let t = Instant::now();"));
        assert!(fires("no-instant-now", "let t = std::time::Instant::now();"));
        assert!(!fires("no-instant-now", "let d = deadline - Instant::elapsed(&x);"));
        assert!(!fires("no-instant-now", "let x = now();"));
        assert!(!fires("no-instant-now", "let s = \"Instant::now\";"));
    }

    #[test]
    fn hash_collections() {
        assert!(fires("no-hash-collections", "use std::collections::HashMap;"));
        assert!(fires("no-hash-collections", "let s: HashSet<u64> = x;"));
        assert!(!fires("no-hash-collections", "let m: BTreeMap<u64, u64> = x;"));
        assert!(!fires("no-hash-collections", "// HashMap in a comment\nlet x = 1;"));
    }

    #[test]
    fn unwrap_and_expect() {
        assert!(fires("no-unwrap", "let x = y.unwrap();"));
        assert!(fires("no-unwrap", "let x = y.unwrap ( ) ;"));
        assert!(!fires("no-unwrap", "let x = y.unwrap_or_else(|| 0);"));
        assert!(fires("no-expect", "let x = y.expect(\"msg\");"));
        assert!(!fires("no-expect", "let x = expected.pop();"));
        assert!(!fires("no-unwrap", "let s = \"don't .unwrap() me\";"));
    }

    #[test]
    fn bang_macros() {
        assert!(fires("no-panic", "panic!(\"boom\")"));
        assert!(fires("no-panic", "std::panic!(\"boom\")"));
        assert!(!fires("no-panic", "std::panic::catch_unwind(f)"));
        assert!(!fires("no-panic", "fn panic_detail() {}"));
        assert!(fires("no-todo", "todo!()"));
        assert!(fires("no-unimplemented", "unimplemented!()"));
        assert!(!fires("no-todo", "let todos = 3;"));
        // `!=` is one token, never a macro bang.
        assert!(!fires("no-panic", "if panic != 0 {}"));
    }

    #[test]
    fn f64_sort() {
        assert!(fires(
            "f64-sort-total-cmp",
            "v.sort_by(|a, b| a.partial_cmp(b).unwrap());"
        ));
        assert!(!fires("f64-sort-total-cmp", "v.sort_by(f64::total_cmp);"));
        assert!(!fires("f64-sort-total-cmp", "a.partial_cmp(&b)"));
    }

    #[test]
    fn lossy_casts() {
        assert!(fires("lossy-float-cast", "let b = (x * 0.9).ceil() as u64;"));
        assert!(fires("lossy-float-cast", "let s = ((a / b).round() as u32).min(c);"));
        assert!(fires("lossy-float-cast", "let n = (blocks as f64 * w) as u64;"));
        assert!(!fires("lossy-float-cast", "let n = tokens as f64;"));
        assert!(!fires("lossy-float-cast", "let n = blocks as u64;"));
        assert!(!fires("lossy-float-cast", "let n = (a + b) as u64;"));
    }

    #[test]
    fn unit_mismatch_basics() {
        assert!(fires("unit-mismatch", "let need = prompt_tokens + retained_blocks;"));
        assert!(fires("unit-mismatch", "if used_blocks > limit_tokens { x(); }"));
        assert!(fires("unit-mismatch", "total_bytes += step_tokens;"));
        assert!(fires("unit-mismatch", "let elapsed_s = total_tokens;"));
        assert!(!fires("unit-mismatch", "let t = prompt_tokens + decode_tokens;"));
        assert!(!fires("unit-mismatch", "let t = prompt_tokens + 16;"));
        assert!(!fires("unit-mismatch", "let t = x + y;"));
    }

    #[test]
    fn unit_mismatch_calls_and_chains() {
        assert!(fires("unit-mismatch", "let x = self.resident_tokens - alloc.used_blocks();"));
        assert!(!fires("unit-mismatch", "let x = q.len() - used_blocks();"));
        // `as` casts don't launder the unit.
        assert!(fires("unit-mismatch", "let x = need_tokens as u64 + used_blocks;"));
    }

    #[test]
    fn unit_mismatch_skips_unit_conversions() {
        // `*` and `/` convert units: a scaled operand has no inferable
        // unit, so conversion arithmetic is not a mixed-unit bug.
        assert!(!fires("unit-mismatch", "let act_bytes = per_layer.tokens * bytes_per_token();"));
        assert!(!fires("unit-mismatch", "let free_tokens = alloc.free_blocks() * block_size;"));
        assert!(!fires("unit-mismatch", "let used_tokens = self.used_blocks * self.block_size as u64;"));
        assert!(!fires("unit-mismatch", "if r.tokens == r.blocks * block_size { g += 1; }"));
        assert!(!fires("unit-mismatch", "let new_blocks = (r.tokens + additional).div_ceil(block_size);"));
        assert!(!fires("unit-mismatch", "let eff_tokens = discount_blocks * 2 + base_tokens;"));
        // But an unscaled mismatch next to a conversion still fires.
        assert!(fires("unit-mismatch", "let x = a_blocks * block_size + b_tokens - c_blocks;"));
    }

    #[test]
    fn unit_mismatch_generics_do_not_fire() {
        assert!(!fires("unit-mismatch", "let v: Vec<u64> = Vec::new();"));
        assert!(!fires("unit-mismatch", "let m: BTreeMap<String, Unit> = BTreeMap::new();"));
        assert!(!fires("unit-mismatch", "fn f<T: Clone>(x: T) {}"));
        assert!(!fires("unit-mismatch", "let x = total_tokens << shift_count;"));
    }

    #[test]
    fn hash_order_iteration_tracks_types() {
        let decl = "let mut seen: HashMap<u64, u64> = HashMap::new();\n";
        assert!(fires("hash-order-iteration", &format!("{decl}for (k, v) in seen {{ }}")));
        assert!(fires("hash-order-iteration", &format!("{decl}for k in seen.keys() {{ }}")));
        assert!(fires("hash-order-iteration", &format!("{decl}let v = seen.iter().count();")));
        assert!(!fires("hash-order-iteration", &format!("{decl}let v = seen.get(&3);")));
        // Not a hash collection: no tracking, no firing.
        assert!(!fires(
            "hash-order-iteration",
            "let seen: BTreeMap<u64, u64> = BTreeMap::new();\nfor k in seen.keys() { }"
        ));
    }

    #[test]
    fn float_int_cast_tracks_names() {
        assert!(fires("float-int-cast", "let ratio: f64 = compute();\nlet n = ratio as u64;"));
        assert!(fires("float-int-cast", "let w = 0.5;\nlet n = w as usize;"));
        assert!(!fires("float-int-cast", "let n = blocks as u64;"));
        assert!(!fires("float-int-cast", "let ratio: f64 = x;\nlet n = other as u64;"));
    }

    #[test]
    fn observer_purity() {
        // Gate reassignment fires.
        assert!(fires("observer-purity", "cfg.record_metrics = true;"));
        // Non-observer mutation inside a gated branch fires.
        assert!(fires(
            "observer-purity",
            "if cfg.record_metrics { self.step_budget = 0; }"
        ));
        // ...including in the else branch.
        assert!(fires(
            "observer-purity",
            "if cfg.record_trace { x(); } else { queue_len = 0; }"
        ));
        // Pure branch (calls only, no assignment) is fine.
        assert!(!fires(
            "observer-purity",
            "if cfg.record_occupancy { emit(snapshot()); }"
        ));
        // Local lets are fine.
        assert!(!fires(
            "observer-purity",
            "if cfg.record_trace { let x = f(); emit(x); }"
        ));
        // Un-gated branches are not this rule's business.
        assert!(!fires("observer-purity", "if other_flag { self.state = 1; }"));
    }

    #[test]
    fn observer_allow_list_is_honoured() {
        let f = FileModel::build("if cfg.record_occupancy { self.occupancy = x; }");
        let units = BTreeMap::new();
        let observers = vec!["occupancy".to_string()];
        let ctx = RuleCtx { units: &units, observers: &observers };
        let hits = (rule_by_name("observer-purity").unwrap().check)(&f, &ctx);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn unit_table_overrides_suffix() {
        let f = FileModel::build("let x = held + need_tokens;");
        let mut units = BTreeMap::new();
        units.insert("held".to_string(), Unit::Blocks);
        let ctx = RuleCtx { units: &units, observers: &[] };
        let hits = (rule_by_name("unit-mismatch").unwrap().check)(&f, &ctx);
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn registry_names_are_unique_and_documented() {
        let mut names: Vec<_> = registry().iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), registry().len());
        for r in registry() {
            assert!(!r.rationale.is_empty(), "{} missing rationale", r.name);
            assert!(!r.example.is_empty(), "{} missing example", r.name);
        }
    }
}
