//! A lightweight Rust source model.
//!
//! The scanner does not parse Rust — it *masks* it: comments and
//! string/char literals are blanked out (preserving line structure), so
//! the rule engine can pattern-match code without tripping on a
//! `"panic!"` inside a string or a lint name inside a comment. On top of
//! the masked text it tracks just enough structure for the lint pass:
//!
//! * **test scopes** — items under `#[cfg(test)]` / `#[test]` and
//!   `mod tests { .. }` blocks are excluded from linting, and
//!   `#[cfg(test)] mod name;` declarations mark whole sibling files as
//!   test-only (see [`ScannedFile::gated_mods`]);
//! * **allow escapes** — `// analyzer: allow(<rule>) — <justification>`
//!   line comments suppress a named rule on the same line (trailing
//!   comment) or on the next code line (standalone comment line). An
//!   allow without a justification is itself reported.

/// One source line of a scanned file.
#[derive(Debug, Clone)]
pub struct LineInfo {
    /// 1-based line number.
    pub number: usize,
    /// The line with comments and string/char literals masked out.
    pub code: String,
    /// The raw source line (for excerpts in findings).
    pub raw: String,
    /// Whether any part of the line sits inside a test-only scope.
    pub in_test: bool,
}

/// A parsed `analyzer: allow(...)` escape.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule names being allowed.
    pub rules: Vec<String>,
    /// The written justification (may be empty — reported if so).
    pub justification: String,
    /// Line the escape applies to.
    pub target_line: usize,
    /// Line the comment itself is written on.
    pub comment_line: usize,
}

/// A fully scanned source file.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Per-line info, 0-indexed by `line - 1`.
    pub lines: Vec<LineInfo>,
    /// Allow escapes, keyed by target line elsewhere.
    pub allows: Vec<Allow>,
    /// Module names declared as `#[cfg(test)] mod name;` — their sibling
    /// `name.rs` files are test-only.
    pub gated_mods: Vec<String>,
}

impl ScannedFile {
    /// Allows that apply to `line` and mention `rule`.
    pub fn allows_for(&self, line: usize, rule: &str) -> Option<&Allow> {
        self.allows
            .iter()
            .find(|a| a.target_line == line && a.rules.iter().any(|r| r == rule))
    }
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Masking lexer state.
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Scan one file's source text into the model.
pub fn scan_source(text: &str) -> ScannedFile {
    let bytes: Vec<char> = text.chars().collect();
    let mut masked = String::with_capacity(text.len());
    // (line, comment text) for every `//` comment.
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut cur_comment = String::new();
    let mut line = 1usize;
    let mut mode = Mode::Code;
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match mode {
            Mode::Code => match c {
                '/' if next == Some('/') => {
                    mode = Mode::LineComment;
                    cur_comment.clear();
                    masked.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    mode = Mode::BlockComment(1);
                    masked.push_str("  ");
                    i += 2;
                }
                '"' => {
                    mode = Mode::Str;
                    masked.push('"');
                    i += 1;
                }
                'r' | 'b' => {
                    // Possible raw/byte string: r", r#", br", b"...
                    let prev_ident = i > 0 && is_ident(bytes[i - 1]);
                    let mut j = i + 1;
                    if c == 'b' && bytes.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if !prev_ident && bytes.get(j) == Some(&'"') && (c == 'r' || j > i + 1) {
                        for _ in i..=j {
                            masked.push(' ');
                        }
                        masked.pop();
                        masked.push('"');
                        i = j + 1;
                        mode = Mode::RawStr(hashes);
                    } else if !prev_ident && c == 'b' && bytes.get(i + 1) == Some(&'"') {
                        masked.push_str(" \"");
                        i += 2;
                        mode = Mode::Str;
                    } else {
                        masked.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal vs lifetime: a literal closes with `'`
                    // within a couple of chars (or after an escape).
                    let is_char_lit = match next {
                        Some('\\') => true,
                        Some(n) if n != '\'' => bytes.get(i + 2) == Some(&'\''),
                        _ => false,
                    };
                    if is_char_lit {
                        mode = Mode::Char;
                        masked.push('\'');
                        i += 1;
                    } else {
                        masked.push('\'');
                        i += 1;
                    }
                }
                '\n' => {
                    masked.push('\n');
                    line += 1;
                    i += 1;
                }
                _ => {
                    masked.push(c);
                    i += 1;
                }
            },
            Mode::LineComment => {
                if c == '\n' {
                    comments.push((line, std::mem::take(&mut cur_comment)));
                    masked.push('\n');
                    line += 1;
                    mode = Mode::Code;
                } else {
                    cur_comment.push(c);
                    masked.push(' ');
                }
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    masked.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    masked.push_str("  ");
                    i += 2;
                } else {
                    if c == '\n' {
                        masked.push('\n');
                        line += 1;
                    } else {
                        masked.push(' ');
                    }
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    if next == Some('\n') {
                        // String-continuation escape: keep the newline so
                        // line numbers stay aligned.
                        masked.push_str(" \n");
                        line += 1;
                    } else {
                        masked.push_str("  ");
                    }
                    i += 2;
                } else if c == '"' {
                    masked.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    if c == '\n' {
                        masked.push('\n');
                        line += 1;
                    } else {
                        masked.push(' ');
                    }
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if bytes.get(i + 1 + k as usize) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        masked.push('"');
                        for _ in 0..hashes {
                            masked.push(' ');
                        }
                        i += 1 + hashes as usize;
                        mode = Mode::Code;
                        continue;
                    }
                }
                if c == '\n' {
                    masked.push('\n');
                    line += 1;
                } else {
                    masked.push(' ');
                }
                i += 1;
            }
            Mode::Char => {
                if c == '\\' {
                    masked.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    masked.push('\'');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    masked.push(' ');
                    i += 1;
                }
            }
        }
    }
    if let Mode::LineComment = mode {
        comments.push((line, std::mem::take(&mut cur_comment)));
    }

    let masked_lines: Vec<&str> = masked.split('\n').collect();
    let raw_lines: Vec<&str> = text.split('\n').collect();
    let (test_lines, gated_mods) = test_scopes(&masked, masked_lines.len());
    let allows = parse_allows(&comments, &masked_lines);

    let lines = masked_lines
        .iter()
        .enumerate()
        .map(|(idx, code)| LineInfo {
            number: idx + 1,
            code: (*code).to_string(),
            raw: raw_lines.get(idx).copied().unwrap_or("").to_string(),
            in_test: test_lines[idx],
        })
        .collect();

    ScannedFile {
        lines,
        allows,
        gated_mods,
    }
}

/// Walk the masked text tracking brace depth, `#[cfg(test)]` / `#[test]`
/// attributes, and `mod tests { .. }` blocks. Returns a per-line
/// test-scope flag plus the test-gated `mod name;` declarations.
fn test_scopes(masked: &str, n_lines: usize) -> (Vec<bool>, Vec<String>) {
    let chars: Vec<char> = masked.chars().collect();
    let mut test = vec![false; n_lines.max(1)];
    let mut gated = Vec::new();
    let mut line = 0usize; // 0-based
    let mut depth = 0i32;
    // Depth (and start line) of each open test scope.
    let mut scopes: Vec<(i32, usize)> = Vec::new();
    let mut pending_test = false;
    let mut pending_mod: Option<String> = None;
    let mut i = 0usize;

    let mark = |test: &mut Vec<bool>, from: usize, to: usize| {
        for l in from..=to.min(test.len() - 1) {
            test[l] = true;
        }
    };

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '#' => {
                // Attribute? Read to the matching `]`.
                let mut j = i + 1;
                while j < chars.len() && chars[j].is_whitespace() {
                    if chars[j] == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
                if chars.get(j) == Some(&'[') {
                    let mut k = j + 1;
                    let mut brackets = 1;
                    let mut content = String::new();
                    while k < chars.len() && brackets > 0 {
                        match chars[k] {
                            '[' => brackets += 1,
                            ']' => brackets -= 1,
                            '\n' => line += 1,
                            _ => {}
                        }
                        if brackets > 0 {
                            content.push(chars[k]);
                        }
                        k += 1;
                    }
                    let compact: String =
                        content.chars().filter(|c| !c.is_whitespace()).collect();
                    let is_test_attr = compact == "test"
                        || (compact.starts_with("cfg(")
                            && contains_word(&compact, "test")
                            && !compact.contains("not(test"));
                    if is_test_attr {
                        pending_test = true;
                    }
                    i = k;
                } else {
                    i += 1;
                }
            }
            '{' => {
                if pending_test {
                    scopes.push((depth, line));
                    pending_test = false;
                }
                pending_mod = None;
                depth += 1;
                i += 1;
            }
            '}' => {
                depth -= 1;
                if let Some(&(d, start)) = scopes.last() {
                    if d == depth {
                        scopes.pop();
                        mark(&mut test, start, line);
                    }
                }
                i += 1;
            }
            ';' => {
                if pending_test {
                    if let Some(name) = pending_mod.take() {
                        gated.push(name);
                    }
                    pending_test = false;
                }
                pending_mod = None;
                i += 1;
            }
            c if is_ident(c) && !c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && is_ident(chars[i]) {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                if word == "mod" {
                    // Read the module name.
                    let mut j = i;
                    while j < chars.len() && chars[j].is_whitespace() && chars[j] != '\n' {
                        j += 1;
                    }
                    let nstart = j;
                    while j < chars.len() && is_ident(chars[j]) {
                        j += 1;
                    }
                    if j > nstart {
                        let name: String = chars[nstart..j].iter().collect();
                        // `mod tests {` is a test scope even without the
                        // attribute (repo convention).
                        if name == "tests" {
                            pending_test = true;
                        }
                        pending_mod = Some(name);
                        i = j;
                    }
                }
            }
            _ => {
                i += 1;
            }
        }
    }
    // Unterminated scopes (shouldn't happen in valid Rust) cover the rest.
    for (_, start) in scopes {
        mark(&mut test, start, n_lines.saturating_sub(1));
    }
    (test, gated)
}

/// `haystack` contains `word` with non-identifier chars on both sides.
pub fn contains_word(haystack: &str, word: &str) -> bool {
    find_word(haystack, word).is_some()
}

/// Byte offset of the first word-boundary occurrence of `word`.
pub fn find_word(haystack: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0
            || !haystack[..at]
                .chars()
                .next_back()
                .map(is_ident)
                .unwrap_or(false);
        let after_ok = !haystack[at + word.len()..]
            .chars()
            .next()
            .map(is_ident)
            .unwrap_or(false);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + word.len();
    }
    None
}

/// Parse `analyzer: allow(rule[, rule]) — justification` escapes out of
/// the collected line comments. A standalone allow's justification
/// continues over the following contiguous standalone comment lines, so
/// wrapped justifications are captured whole.
fn parse_allows(comments: &[(usize, String)], masked_lines: &[&str]) -> Vec<Allow> {
    let by_line: std::collections::BTreeMap<usize, &str> = comments
        .iter()
        .map(|(l, t)| (*l, t.as_str()))
        .collect();
    let standalone = |line: usize| {
        masked_lines
            .get(line - 1)
            .map(|l| l.trim().is_empty())
            .unwrap_or(false)
    };
    let mut allows = Vec::new();
    for (line, text) in comments {
        let t = text.trim();
        let Some(rest) = t.strip_prefix("analyzer:") else {
            continue;
        };
        let rest = rest.trim_start();
        let (rules, justification) = match rest.strip_prefix("allow(") {
            Some(after) => match after.find(')') {
                Some(close) => {
                    let rules: Vec<String> = after[..close]
                        .split(',')
                        .map(|r| r.trim().to_string())
                        .filter(|r| !r.is_empty())
                        .collect();
                    let tail = after[close + 1..].trim();
                    let just = tail
                        .strip_prefix('\u{2014}') // em dash
                        .or_else(|| tail.strip_prefix("--"))
                        .or_else(|| tail.strip_prefix('-'))
                        .unwrap_or("")
                        .trim()
                        .to_string();
                    (rules, just)
                }
                None => (Vec::new(), String::new()),
            },
            None => (Vec::new(), String::new()),
        };
        // Standalone comment line → applies to the next code line;
        // trailing comment → applies to its own line.
        let own_code = !standalone(*line);
        let mut justification = justification;
        if !own_code {
            // Absorb the wrapped continuation lines of the comment block.
            let mut j = *line + 1;
            while let Some(txt) = by_line.get(&j) {
                let txt = txt.trim();
                if !standalone(j) || txt.starts_with("analyzer:") {
                    break;
                }
                if !justification.is_empty() && !txt.is_empty() {
                    justification.push(' ');
                }
                justification.push_str(txt);
                j += 1;
            }
        }
        let target = if own_code {
            *line
        } else {
            let mut t = line + 1;
            while t <= masked_lines.len()
                && masked_lines
                    .get(t - 1)
                    .map(|l| l.trim().is_empty())
                    .unwrap_or(false)
            {
                t += 1;
            }
            t
        };
        allows.push(Allow {
            rules,
            justification,
            target_line: target,
            comment_line: *line,
        });
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_strings_and_comments() {
        let f = scan_source("let x = \"panic!()\"; // HashMap here\nlet y = 1;\n");
        assert!(!f.lines[0].code.contains("panic"));
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].code.contains("let x"));
        assert_eq!(f.lines[1].code.trim(), "let y = 1;");
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let f = scan_source("let s = r#\"Instant::now\"#;\nlet c = 'x';\nlet l: &'a str = s;\n");
        assert!(!f.lines[0].code.contains("Instant"));
        assert!(f.lines[1].code.contains("let c"));
        assert!(f.lines[2].code.contains("&'a str"));
    }

    #[test]
    fn tracks_cfg_test_scopes() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); }\n\
                   }\n\
                   fn live2() {}\n";
        let f = scan_source(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn mod_tests_block_is_test_scope_without_attr() {
        let f = scan_source("mod tests {\n fn t() {}\n}\nfn live() {}\n");
        assert!(f.lines[1].in_test);
        assert!(!f.lines[3].in_test);
    }

    #[test]
    fn gated_mod_declarations_are_collected() {
        let f = scan_source("pub mod real;\n#[cfg(test)]\nmod proptests;\n");
        assert_eq!(f.gated_mods, vec!["proptests".to_string()]);
    }

    #[test]
    fn not_test_cfg_is_not_a_test_scope() {
        let f = scan_source("#[cfg(not(test))]\nfn live() { x.unwrap(); }\n");
        assert!(!f.lines[1].in_test);
    }

    #[test]
    fn allow_trailing_and_standalone() {
        let src = "a.unwrap(); // analyzer: allow(no-unwrap) — trailing case\n\
                   // analyzer: allow(no-panic) — standalone case\n\
                   panic!();\n";
        let f = scan_source(src);
        let t = f.allows_for(1, "no-unwrap").expect("trailing allow");
        assert_eq!(t.justification, "trailing case");
        let s = f.allows_for(3, "no-panic").expect("standalone allow");
        assert_eq!(s.justification, "standalone case");
    }

    #[test]
    fn allow_without_justification_is_kept_but_empty() {
        let f = scan_source("x.unwrap(); // analyzer: allow(no-unwrap)\n");
        let a = f.allows_for(1, "no-unwrap").unwrap();
        assert!(a.justification.is_empty());
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_word("MyHashMapLike", "HashMap"));
        assert!(!contains_word("panic_detail(x)", "panic"));
    }
}
