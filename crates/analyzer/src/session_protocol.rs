//! Layer-2 model checker for the session-KV retention protocol.
//!
//! Mirrors the `SessionRetainer` contract between
//! `crates/kvcache/src/session.rs` and the engine's
//! `release_finished`/`reclaim_retained`/admission-claim paths
//! (`crates/core/src/engine.rs`): when a turn finishes, its KV blocks may
//! be *retained* for the session's next turn (the donor keeps its
//! allocator slot); the successor's admission *claims* the entry (frees
//! the donor, allocates full length, prefills only the fresh suffix);
//! memory pressure or the retention budget *drops* entries oldest-first,
//! which must revoke the successor's prefill discount.
//!
//! The checker explores every interleaving of admit / reclaim / finish
//! over ≤3 sessions × ≤2 turns by BFS and verifies, at every state:
//!
//! * **conservation / no-block-leak** — free + live allocations always
//!   equals pool size, and a fully-finished run ends with everything
//!   free and the retainer empty;
//! * **budget-never-exceeded** — idle retained blocks never exceed the
//!   configured budget;
//! * **no-claim-after-drop** — a retained entry's donor still holds
//!   exactly the retained blocks when the successor claims;
//! * **miss ⇒ full-prefill** — a successor admitted without a surviving
//!   entry must carry no prefill discount (else it would under-prefill);
//! * **no deadlock** — some transition is enabled until all turns finish.
//!
//! [`SessionMutation`]s seed protocol bugs (skipped budget check, stale
//! discount after a drop, donor never freed on claim) and the test suite
//! asserts each yields a counterexample trace — the checker is not
//! vacuously green.

use std::collections::{HashMap, VecDeque};

/// Seeded protocol bugs proving the checker catches what it claims to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionMutation {
    /// Faithful protocol.
    None,
    /// `retain` skips the budget check (no make-room loop, no `fits`).
    BudgetBlind,
    /// Dropping a retained entry forgets to clear the successor's
    /// prefill discount.
    NoDiscountClear,
    /// Claiming an entry forgets to free the donor's allocator slot.
    DonorLeak,
}

/// One bounded scenario: `sessions` closed-loop sessions of `turns`
/// turns each, a KV pool of `total_blocks`, a retention budget, and a
/// per-turn footprint of `turn_blocks + turn_index` blocks (transcripts
/// grow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionScenario {
    /// Concurrent sessions (1..=3 in the checked sweep).
    pub sessions: u8,
    /// Turns per session (1..=2 in the checked sweep).
    pub turns: u8,
    /// KV pool size in blocks.
    pub total_blocks: u16,
    /// Retention budget in blocks (0 = retention disabled).
    pub budget_blocks: u16,
    /// Base per-turn footprint in blocks.
    pub turn_blocks: u16,
    /// Seeded bug, if any.
    pub mutation: SessionMutation,
}

impl SessionScenario {
    /// Request index for `(session, turn)`.
    fn req(&self, session: u8, turn: u8) -> usize {
        session as usize * self.turns as usize + turn as usize
    }

    /// Total request count.
    fn n(&self) -> usize {
        self.sessions as usize * self.turns as usize
    }

    /// Turn index of request `r`.
    fn turn_of(&self, r: usize) -> u8 {
        (r % self.turns as usize) as u8
    }

    /// Blocks request `r` occupies while resident.
    fn demand(&self, r: usize) -> u16 {
        self.turn_blocks + self.turn_of(r) as u16
    }

    /// The same-session next turn, if any.
    fn successor(&self, r: usize) -> Option<usize> {
        let t = self.turn_of(r);
        (t + 1 < self.turns).then(|| r + 1)
    }
}

/// Request lifecycle in the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Phase {
    /// Successor turn whose predecessor has not finished yet.
    NotArrived,
    /// Released, waiting for admission.
    Pending,
    /// Resident and decoding.
    Active,
    /// Finished (its blocks may linger as a retained donor slot).
    Finished,
}

/// One explored state of the retention protocol.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    phase: Vec<Phase>,
    /// Blocks held in the allocator under each request id (actives and
    /// retained donors).
    live: Vec<u16>,
    /// Free pool blocks.
    free: u16,
    /// Retained entry per successor id: `(donor, blocks)`.
    entries: Vec<Option<(u8, u16)>>,
    /// Successor ids in retain order (front = oldest).
    order: Vec<u8>,
    /// Idle retained blocks (Σ entry blocks).
    retained_total: u16,
    /// Successor-side prefill discount flags.
    discount: Vec<bool>,
}

/// A violation with the interleaving that reached it.
#[derive(Debug, Clone)]
pub struct SessionViolation {
    /// What property broke.
    pub message: String,
    /// Step labels from the initial state to the violation.
    pub trace: Vec<String>,
}

impl std::fmt::Display for SessionViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "session protocol violation: {}", self.message)?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>2}. {step}", i + 1)?;
        }
        Ok(())
    }
}

/// What an exhaustive pass over one scenario saw.
#[derive(Debug, Clone, Default)]
pub struct SessionSummary {
    /// Distinct states explored.
    pub states: usize,
    /// `admit` transitions that claimed a retained prefix.
    pub hits: usize,
    /// `admit` transitions of a resumed turn with no surviving entry.
    pub misses: usize,
    /// Entries dropped (pressure reclaim or budget make-room).
    pub drops: usize,
    /// `retain` transitions taken.
    pub retains: usize,
}

fn initial(sc: &SessionScenario) -> State {
    let n = sc.n();
    let mut phase = vec![Phase::NotArrived; n];
    for s in 0..sc.sessions {
        phase[sc.req(s, 0)] = Phase::Pending;
    }
    State {
        phase,
        live: vec![0; n],
        free: sc.total_blocks,
        entries: vec![None; n],
        order: Vec::new(),
        retained_total: 0,
        discount: vec![false; n],
    }
}

/// Drop the oldest retained entry whose successor is not `keep`.
/// Returns `false` when nothing was poppable.
fn pop_oldest_except(
    sc: &SessionScenario,
    s: &mut State,
    keep: Option<usize>,
) -> bool {
    let Some(pos) = s
        .order
        .iter()
        .position(|&succ| Some(succ as usize) != keep)
    else {
        return false;
    };
    let succ = s.order.remove(pos) as usize;
    let Some((donor, blocks)) = s.entries[succ].take() else {
        return false; // internal inconsistency; invariants() reports it
    };
    s.retained_total -= blocks;
    s.free += blocks;
    s.live[donor as usize] = 0;
    if sc.mutation != SessionMutation::NoDiscountClear {
        s.discount[succ] = false;
    }
    true
}

/// Per-state safety invariants; `None` = all hold.
fn invariants(sc: &SessionScenario, s: &State) -> Option<String> {
    let live_sum: u32 = s.live.iter().map(|&b| b as u32).sum();
    if s.free as u32 + live_sum != sc.total_blocks as u32 {
        return Some(format!(
            "block conservation broken: free {} + live {} != pool {}",
            s.free, live_sum, sc.total_blocks
        ));
    }
    if s.retained_total > sc.budget_blocks {
        return Some(format!(
            "retention budget exceeded: {} idle blocks > budget {}",
            s.retained_total, sc.budget_blocks
        ));
    }
    let entry_sum: u32 = s
        .entries
        .iter()
        .flatten()
        .map(|&(_, b)| b as u32)
        .sum();
    if entry_sum != s.retained_total as u32 {
        return Some(format!(
            "retained accounting drifted: entries hold {entry_sum}, counter says {}",
            s.retained_total
        ));
    }
    for (succ, e) in s.entries.iter().enumerate() {
        if let Some((donor, blocks)) = e {
            if s.live[*donor as usize] != *blocks {
                return Some(format!(
                    "claim-after-drop hazard: entry for successor {succ} expects donor \
                     {donor} to hold {blocks} blocks, allocator holds {}",
                    s.live[*donor as usize]
                ));
            }
        }
    }
    for (r, &d) in s.discount.iter().enumerate() {
        if d && s.entries[r].is_none() {
            return Some(format!(
                "request {r} carries a prefill discount with no retained entry — a \
                 reuse miss would under-prefill"
            ));
        }
    }
    None
}

/// `(label, next state, violation)` — violation set when the transition
/// itself breaks a property (beyond what [`invariants`] sees in states).
type Step = (String, State, Option<String>);

fn successors(sc: &SessionScenario, s: &State) -> Vec<Step> {
    let mut out: Vec<Step> = Vec::new();
    for r in 0..sc.n() {
        match s.phase[r] {
            Phase::Pending => {
                let dem = sc.demand(r);
                let donor_blocks = s.entries[r].map_or(0, |(_, b)| b);
                if s.free + donor_blocks >= dem {
                    // Admission: claim the retained prefix (hit) or admit
                    // at full prefill (miss).
                    let mut n = s.clone();
                    let mut violation = None;
                    let label;
                    if let Some((donor, blocks)) = n.entries[r].take() {
                        label = format!("admit-hit r{r} (claims donor {donor})");
                        if let Some(p) = n.order.iter().position(|&x| x as usize == r) {
                            n.order.remove(p);
                        }
                        n.retained_total -= blocks;
                        if sc.mutation != SessionMutation::DonorLeak {
                            n.free += blocks;
                            n.live[donor as usize] = 0;
                        }
                    } else {
                        label = format!("admit-miss r{r}");
                        if n.discount[r] {
                            violation = Some(format!(
                                "request {r} admitted as a reuse miss but its prefill \
                                 discount was never revoked (would under-prefill)"
                            ));
                        }
                    }
                    n.discount[r] = false;
                    match n.free.checked_sub(dem) {
                        Some(f) => n.free = f,
                        None => {
                            violation = violation.or_else(|| {
                                Some(format!(
                                    "allocator over-committed admitting request {r}: \
                                     demand {dem} > free {}",
                                    n.free
                                ))
                            });
                            n.free = 0;
                        }
                    }
                    n.live[r] = dem;
                    n.phase[r] = Phase::Active;
                    out.push((label, n, violation));
                } else if s.order.iter().any(|&succ| succ as usize != r) {
                    // Memory pressure: reclaim an idle retained prefix
                    // (never the one reserved for `r` itself).
                    let mut n = s.clone();
                    pop_oldest_except(sc, &mut n, Some(r));
                    out.push((format!("reclaim (making room for r{r})"), n, None));
                }
            }
            Phase::Active => {
                let mut n = s.clone();
                let held = n.live[r];
                let mut label = format!("finish r{r}");
                let mut retained = false;
                if let Some(succ) = sc.successor(r) {
                    if sc.budget_blocks > 0 {
                        if sc.mutation != SessionMutation::BudgetBlind {
                            // Make room in the retention budget,
                            // oldest-first.
                            while n.retained_total + held > sc.budget_blocks {
                                if !pop_oldest_except(sc, &mut n, None) {
                                    break;
                                }
                            }
                        }
                        let fits = n.retained_total + held <= sc.budget_blocks;
                        if fits || sc.mutation == SessionMutation::BudgetBlind {
                            n.entries[succ] = Some((r as u8, held));
                            n.order.push(succ as u8);
                            n.retained_total += held;
                            n.discount[succ] = true;
                            retained = true;
                            label = format!("finish r{r} (retains for r{succ})");
                        }
                    }
                    n.phase[succ] = Phase::Pending;
                }
                if !retained {
                    n.free += held;
                    n.live[r] = 0;
                }
                n.phase[r] = Phase::Finished;
                out.push((label, n, None));
            }
            Phase::NotArrived | Phase::Finished => {}
        }
    }
    out
}

/// Terminal-state properties once every turn has finished.
fn terminal_check(sc: &SessionScenario, s: &State) -> Option<String> {
    if s.free != sc.total_blocks {
        let leaked: Vec<String> = s
            .live
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > 0)
            .map(|(r, &b)| format!("r{r}:{b}"))
            .collect();
        return Some(format!(
            "block leak at end of run: {} of {} blocks free (leaked: {})",
            s.free,
            sc.total_blocks,
            leaked.join(", ")
        ));
    }
    if !s.order.is_empty() || s.entries.iter().any(Option::is_some) {
        return Some("retainer not empty after all sessions finished".to_string());
    }
    None
}

/// Safety valve: scenarios in the checked range stay far below this.
const MAX_STATES: usize = 1_000_000;

/// Exhaustively check one scenario over all interleavings.
pub fn check_session(sc: &SessionScenario) -> Result<SessionSummary, SessionViolation> {
    assert!(sc.sessions >= 1 && sc.turns >= 1, "need at least one turn");
    assert!(
        sc.total_blocks >= sc.turn_blocks + sc.turns as u16 - 1,
        "pool must fit the largest single turn or every run deadlocks"
    );
    let init = initial(sc);
    let mut states: Vec<State> = vec![init.clone()];
    let mut parent: Vec<Option<(usize, String)>> = vec![None];
    let mut seen: HashMap<State, usize> = HashMap::new();
    seen.insert(init, 0);
    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    let mut summary = SessionSummary::default();

    let trace_to = |parent: &[Option<(usize, String)>], mut i: usize, extra: Option<String>| {
        let mut labels = Vec::new();
        if let Some(e) = extra {
            labels.push(e);
        }
        while let Some((p, label)) = &parent[i] {
            labels.push(label.clone());
            i = *p;
        }
        labels.reverse();
        labels
    };

    while let Some(i) = queue.pop_front() {
        let state = states[i].clone();
        if state.phase.iter().all(|&p| p == Phase::Finished) {
            if let Some(message) = terminal_check(sc, &state) {
                return Err(SessionViolation {
                    message,
                    trace: trace_to(&parent, i, None),
                });
            }
            continue;
        }
        let succs = successors(sc, &state);
        if succs.is_empty() {
            return Err(SessionViolation {
                message: "deadlock: turns outstanding but no transition enabled".to_string(),
                trace: trace_to(&parent, i, None),
            });
        }
        for (label, next, violation) in succs {
            let violation = violation.or_else(|| invariants(sc, &next));
            if let Some(message) = violation {
                return Err(SessionViolation {
                    message,
                    trace: trace_to(&parent, i, Some(label)),
                });
            }
            if seen.contains_key(&next) {
                continue;
            }
            if label.starts_with("admit-hit") {
                summary.hits += 1;
            } else if label.starts_with("admit-miss") {
                summary.misses += 1;
            } else if label.starts_with("reclaim") {
                summary.drops += 1;
            } else if label.contains("retains") {
                summary.retains += 1;
            }
            let idx = states.len();
            states.push(next.clone());
            parent.push(Some((i, label)));
            seen.insert(next, idx);
            queue.push_back(idx);
            if states.len() > MAX_STATES {
                return Err(SessionViolation {
                    message: format!("state space exceeded {MAX_STATES} states"),
                    trace: Vec::new(),
                });
            }
        }
    }
    summary.states = states.len();
    Ok(summary)
}

/// Every faithful scenario in the bounded sweep: session/turn counts up
/// to the caps, pools tight enough to force pressure reclaims and roomy
/// enough to see clean claims, budgets spanning disabled / contended /
/// comfortable retention.
pub fn all_session_scenarios(max_sessions: u8, max_turns: u8) -> Vec<SessionScenario> {
    let mut out = Vec::new();
    for sessions in 1..=max_sessions {
        for turns in 1..=max_turns {
            for &total_blocks in &[3u16, 6, 7] {
                for &budget_blocks in &[0u16, 2, 4] {
                    out.push(SessionScenario {
                        sessions,
                        turns,
                        total_blocks,
                        budget_blocks,
                        turn_blocks: 2,
                        mutation: SessionMutation::None,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SessionScenario {
        SessionScenario {
            sessions: 2,
            turns: 2,
            total_blocks: 7,
            budget_blocks: 2,
            turn_blocks: 2,
            mutation: SessionMutation::None,
        }
    }

    #[test]
    fn faithful_base_scenario_passes() {
        let summary = check_session(&base()).unwrap();
        assert!(summary.states > 10, "{summary:?}");
    }

    #[test]
    fn single_session_reuse_hit_path() {
        let sc = SessionScenario {
            sessions: 1,
            budget_blocks: 4,
            ..base()
        };
        let summary = check_session(&sc).unwrap();
        assert!(summary.hits > 0, "retained prefix never claimed: {summary:?}");
    }

    #[test]
    fn budget_zero_disables_retention() {
        let sc = SessionScenario {
            budget_blocks: 0,
            ..base()
        };
        let summary = check_session(&sc).unwrap();
        assert_eq!(summary.hits, 0);
        assert!(summary.misses > 0, "{summary:?}");
    }

    #[test]
    fn budget_blind_mutation_is_caught() {
        let sc = SessionScenario {
            mutation: SessionMutation::BudgetBlind,
            ..base()
        };
        let v = check_session(&sc).unwrap_err();
        assert!(v.message.contains("budget exceeded"), "{v}");
        assert!(!v.trace.is_empty());
    }

    #[test]
    fn no_discount_clear_mutation_is_caught() {
        let sc = SessionScenario {
            mutation: SessionMutation::NoDiscountClear,
            ..base()
        };
        let v = check_session(&sc).unwrap_err();
        assert!(v.message.contains("discount"), "{v}");
        assert!(!v.trace.is_empty());
    }

    #[test]
    fn donor_leak_mutation_is_caught() {
        let sc = SessionScenario {
            sessions: 1,
            budget_blocks: 4,
            mutation: SessionMutation::DonorLeak,
            ..base()
        };
        let v = check_session(&sc).unwrap_err();
        assert!(
            v.message.contains("leak") || v.message.contains("over-committed"),
            "{v}"
        );
        assert!(!v.trace.is_empty());
    }
}
