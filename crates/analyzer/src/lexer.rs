//! A hand-rolled Rust lexer.
//!
//! The analyzer's v1 scanner *masked* Rust — it blanked out comments and
//! string literals and pattern-matched the residue. This lexer replaces
//! that with a real token stream: every byte of the source is either
//! inside exactly one token or is inter-token whitespace, so the stream
//! round-trips to the original text (see [`round_trip`], pinned by a
//! test over the analyzer's own sources). Rules then match *tokens* —
//! an identifier inside a string literal simply never appears as an
//! `Ident` token, which removes the masked scanner's false-positive
//! class at the root instead of papering over it.
//!
//! The lexer is deliberately lossless and forgiving: it never rejects
//! input (unterminated literals run to end-of-file), because lint
//! tooling must degrade gracefully on code mid-edit. It understands the
//! token shapes that matter for linting real Rust:
//!
//! * line/block comments (nested), doc comments included;
//! * string, raw-string (`r#".."#`), byte-string, char and byte-char
//!   literals, with escapes;
//! * lifetimes vs char literals (`'a` vs `'a'`);
//! * numbers with underscores, radix prefixes, exponents and type
//!   suffixes, classified int vs float;
//! * multi-character operators (`::`, `->`, `==`, `+=`, `..=`, …) joined
//!   into single tokens — except `<<`/`>>`, which stay split so nested
//!   generic closers (`Vec<Vec<u64>>`) lex correctly.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `let`, `as`, `r#raw`).
    Ident,
    /// Lifetime (`'a`) — no closing quote.
    Lifetime,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.5`, `1e-3`, `2f64`).
    Float,
    /// String or byte-string literal, escapes included (`"x"`, `b"x"`).
    Str,
    /// Raw (byte) string literal (`r"x"`, `br#"x"#`).
    RawStr,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Operator or delimiter, multi-char forms joined (`::`, `+=`, `{`).
    Punct,
    /// `// ...` comment, text includes the slashes, excludes the newline.
    LineComment,
    /// `/* ... */` comment (possibly nested, possibly multi-line).
    BlockComment,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line the token *starts* on.
    pub line: usize,
    /// Char offset of the token start in the source.
    pub start: usize,
}

impl Token {
    /// True when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True when this token is the punct `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// True for the comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Multi-char puncts, longest first within each length class. `<<` and
/// `>>` are intentionally absent (generic closers), as are their
/// assignment forms — a shift still lexes, as two tokens.
const PUNCT3: [&str; 2] = ["..=", "..."];
const PUNCT2: [&str; 18] = [
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "^=",
    "&=", "|=", "..",
];

/// Lex `src` into a lossless token stream.
pub fn lex(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks: Vec<Token> = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Count newlines inside `chars[from..to]`.
    let newlines = |from: usize, to: usize, chars: &[char]| -> usize {
        chars[from..to].iter().filter(|&&c| c == '\n').count()
    };
    let text_of = |from: usize, to: usize, chars: &[char]| -> String {
        chars[from..to].iter().collect()
    };

    while i < chars.len() {
        let c = chars[i];
        let start = i;
        let start_line = line;

        // Inter-token whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let mut j = i + 2;
            while j < chars.len() && chars[j] != '\n' {
                j += 1;
            }
            toks.push(Token {
                kind: TokKind::LineComment,
                text: text_of(i, j, &chars),
                line: start_line,
                start,
            });
            i = j;
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1u32;
            let mut j = i + 2;
            while j < chars.len() && depth > 0 {
                if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            line += newlines(i, j.min(chars.len()), &chars);
            toks.push(Token {
                kind: TokKind::BlockComment,
                text: text_of(i, j.min(chars.len()), &chars),
                line: start_line,
                start,
            });
            i = j.min(chars.len());
            continue;
        }

        // Raw strings and byte strings starting at `r` / `b` / `br`.
        if c == 'r' || c == 'b' {
            if let Some((end, kind)) = raw_or_byte_literal(&chars, i) {
                line += newlines(i, end, &chars);
                toks.push(Token {
                    kind,
                    text: text_of(i, end, &chars),
                    line: start_line,
                    start,
                });
                i = end;
                continue;
            }
        }

        // Identifiers, keywords, and `r#raw` identifiers.
        if is_ident_start(c) {
            let mut j = i;
            if c == 'r' && chars.get(i + 1) == Some(&'#') && chars.get(i + 2).map(|&n| is_ident_start(n)).unwrap_or(false) {
                j = i + 2; // raw identifier
            }
            while j < chars.len() && is_ident_continue(chars[j]) {
                j += 1;
            }
            toks.push(Token {
                kind: TokKind::Ident,
                text: text_of(i, j, &chars),
                line: start_line,
                start,
            });
            i = j;
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let (end, kind) = number(&chars, i);
            toks.push(Token {
                kind,
                text: text_of(i, end, &chars),
                line: start_line,
                start,
            });
            i = end;
            continue;
        }

        // Strings.
        if c == '"' {
            let end = string_end(&chars, i + 1);
            line += newlines(i, end, &chars);
            toks.push(Token {
                kind: TokKind::Str,
                text: text_of(i, end, &chars),
                line: start_line,
                start,
            });
            i = end;
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let (end, kind) = char_or_lifetime(&chars, i);
            toks.push(Token {
                kind,
                text: text_of(i, end, &chars),
                line: start_line,
                start,
            });
            i = end;
            continue;
        }

        // Puncts: longest-match multi-char first.
        let mut matched = None;
        for cand in PUNCT3 {
            if starts_with_at(&chars, i, cand) {
                matched = Some(cand.len());
                break;
            }
        }
        if matched.is_none() {
            for cand in PUNCT2 {
                if starts_with_at(&chars, i, cand) {
                    matched = Some(cand.len());
                    break;
                }
            }
        }
        let len = matched.unwrap_or(1);
        toks.push(Token {
            kind: TokKind::Punct,
            text: text_of(i, i + len, &chars),
            line: start_line,
            start,
        });
        i += len;
    }
    toks
}

fn starts_with_at(chars: &[char], at: usize, pat: &str) -> bool {
    pat.chars()
        .enumerate()
        .all(|(k, p)| chars.get(at + k) == Some(&p))
}

/// `r"..."`, `r#"..."#`, `br#"..."#`, `b"..."`, `b'x'` starting at `i`;
/// returns `(end, kind)` when one is actually there. A preceding
/// identifier character has already been ruled out by the main loop
/// (identifiers consume greedily, so `car"x"` never reaches here with
/// `i` pointing at the `r`).
fn raw_or_byte_literal(chars: &[char], i: usize) -> Option<(usize, TokKind)> {
    let c = chars[i];
    let mut j = i + 1;
    let mut raw = c == 'r';
    if c == 'b' {
        if chars.get(j) == Some(&'r') {
            raw = true;
            j += 1;
        } else if chars.get(j) == Some(&'"') {
            // Byte string: like a normal string.
            let end = string_end(chars, j + 1);
            return Some((end, TokKind::Str));
        } else if chars.get(j) == Some(&'\'') {
            // Byte char.
            let (end, kind) = char_or_lifetime(chars, j);
            if kind == TokKind::Char {
                return Some((end, TokKind::Char));
            }
            return None;
        } else {
            return None;
        }
    }
    if !raw {
        return None;
    }
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return None; // `r#ident` or plain `r` — an identifier, not a string
    }
    j += 1;
    // Scan for `"` followed by `hashes` `#`s.
    while j < chars.len() {
        if chars[j] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if chars.get(j + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return Some((j + 1 + hashes, TokKind::RawStr));
            }
        }
        j += 1;
    }
    Some((chars.len(), TokKind::RawStr)) // unterminated: run to EOF
}

/// End of a string body starting just after the opening quote.
fn string_end(chars: &[char], mut j: usize) -> usize {
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    chars.len()
}

/// Char literal or lifetime starting at the `'` at `i`.
fn char_or_lifetime(chars: &[char], i: usize) -> (usize, TokKind) {
    let next = chars.get(i + 1).copied();
    // `'x'` closes two chars later; `'\n'` starts with an escape; anything
    // else (`'a` in `<'a>`, `'_`) is a lifetime.
    let is_char = match next {
        Some('\\') => true,
        Some(n) if n != '\'' => chars.get(i + 2) == Some(&'\''),
        _ => false,
    };
    if is_char {
        let mut j = i + 1;
        while j < chars.len() {
            match chars[j] {
                '\\' => j += 2,
                '\'' => return (j + 1, TokKind::Char),
                _ => j += 1,
            }
        }
        (chars.len(), TokKind::Char)
    } else {
        // Lifetime: `'` + ident chars (possibly none: a stray quote).
        let mut j = i + 1;
        while j < chars.len() && is_ident_continue(chars[j]) {
            j += 1;
        }
        (j, TokKind::Lifetime)
    }
}

/// Number starting at digit `i`: returns `(end, Int | Float)`.
fn number(chars: &[char], i: usize) -> (usize, TokKind) {
    let mut j = i;
    let mut float = false;
    let radix_prefixed = chars[i] == '0'
        && matches!(chars.get(i + 1), Some('x') | Some('X') | Some('b') | Some('B') | Some('o') | Some('O'));
    if radix_prefixed {
        j = i + 2;
        while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        return (j, TokKind::Int);
    }
    while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
        j += 1;
    }
    // Fractional part: `.` followed by anything that is not a second `.`
    // (range) and not an identifier start (method call / field access).
    if chars.get(j) == Some(&'.') {
        let after = chars.get(j + 1).copied();
        let fraction = match after {
            Some('.') => false,
            Some(c) if is_ident_start(c) => false,
            _ => true,
        };
        if fraction {
            float = true;
            j += 1;
            while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
    }
    // Exponent.
    if matches!(chars.get(j), Some('e') | Some('E')) {
        let mut k = j + 1;
        if matches!(chars.get(k), Some('+') | Some('-')) {
            k += 1;
        }
        if chars.get(k).map(|c| c.is_ascii_digit()).unwrap_or(false) {
            float = true;
            j = k;
            while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
    }
    // Type suffix (`u64`, `f32`, …) — consume trailing ident chars.
    let suffix_start = j;
    while j < chars.len() && is_ident_continue(chars[j]) {
        j += 1;
    }
    let suffix: String = chars[suffix_start..j].iter().collect();
    if suffix == "f32" || suffix == "f64" {
        float = true;
    }
    (j, if float { TokKind::Float } else { TokKind::Int })
}

/// Reconstruct the source from its token stream: token texts at their
/// recorded offsets, original whitespace between them. Returns `None`
/// when the stream does not tile the source (a lexer bug).
pub fn round_trip(src: &str, toks: &[Token]) -> Option<String> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut pos = 0usize;
    for t in toks {
        if t.start < pos || t.start > chars.len() {
            return None;
        }
        let gap: String = chars[pos..t.start].iter().collect();
        if !gap.chars().all(char::is_whitespace) {
            return None; // lexer skipped non-whitespace
        }
        out.push_str(&gap);
        out.push_str(&t.text);
        pos = t.start + t.text.chars().count();
    }
    if pos > chars.len() {
        return None;
    }
    let tail: String = chars[pos..].iter().collect();
    if !tail.chars().all(char::is_whitespace) {
        return None;
    }
    out.push_str(&tail);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let k = kinds("let x = a::b.c();");
        assert_eq!(k[0], (TokKind::Ident, "let".into()));
        assert_eq!(k[1], (TokKind::Ident, "x".into()));
        assert_eq!(k[2], (TokKind::Punct, "=".into()));
        assert_eq!(k[4], (TokKind::Punct, "::".into()));
        assert!(k.contains(&(TokKind::Punct, ".".into())));
    }

    #[test]
    fn strings_do_not_leak_idents() {
        let toks = lex("let s = \"panic! Instant::now()\";");
        assert!(toks.iter().all(|t| !(t.kind == TokKind::Ident && t.text == "panic")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = lex("let a = r#\"x \"q\" y\"#; let b = b\"z\"; let c = br##\"w\"##;");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::RawStr).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn chars_vs_lifetimes() {
        let toks = lex("let c = 'x'; let e = '\\n'; fn f<'a>(s: &'a str) {} let b = b'q';");
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        let lifes: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(chars.len(), 3, "{chars:?}");
        assert_eq!(lifes.len(), 2, "{lifes:?}");
    }

    #[test]
    fn numbers_int_vs_float() {
        let k = kinds("let a = 1; let b = 1.5; let c = 1e3; let d = 0xff; let e = 2f64; let f = 1_000u32; let g = 1..5; let h = x.0;");
        let ints: Vec<_> = k.iter().filter(|(k, _)| *k == TokKind::Int).map(|(_, t)| t.clone()).collect();
        let floats: Vec<_> = k.iter().filter(|(k, _)| *k == TokKind::Float).map(|(_, t)| t.clone()).collect();
        assert_eq!(floats, vec!["1.5", "1e3", "2f64"]);
        assert!(ints.contains(&"0xff".to_string()));
        assert!(ints.contains(&"1_000u32".to_string()));
        // `1..5` stays a range of ints.
        assert!(k.contains(&(TokKind::Punct, "..".into())));
        // Tuple index: `.` then int.
        assert!(ints.contains(&"0".to_string()));
    }

    #[test]
    fn method_on_literal_is_not_a_float() {
        let k = kinds("let a = 1.max(2);");
        assert!(k.contains(&(TokKind::Int, "1".into())), "{k:?}");
        assert!(k.contains(&(TokKind::Ident, "max".into())));
    }

    #[test]
    fn nested_generics_keep_closers_split() {
        let k = kinds("let v: Vec<Vec<u64>> = Vec::new();");
        assert_eq!(
            k.iter().filter(|(kind, t)| *kind == TokKind::Punct && t == ">").count(),
            2
        );
    }

    #[test]
    fn comments_nested_and_line() {
        let toks = lex("code(); // trailing\n/* a /* nested */ b */ more();");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::LineComment).count(), 1);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::BlockComment).count(), 1);
        assert!(toks.iter().any(|t| t.is_ident("more")));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let toks = lex("a\n/* x\ny */\nb\n\"s1\ns2\"\nc");
        let find = |name: &str| toks.iter().find(|t| t.text == name).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(4));
        assert_eq!(find("c"), Some(7));
    }

    #[test]
    fn round_trips_itself() {
        let src = "fn f(x: &'a str) -> u64 { let v = r#\"q\"#; x.len() as u64 + 0x1f }\n// done\n";
        let toks = lex(src);
        assert_eq!(round_trip(src, &toks).as_deref(), Some(src));
    }

    #[test]
    fn raw_identifier() {
        let k = kinds("let r#type = 1;");
        assert!(k.contains(&(TokKind::Ident, "r#type".into())), "{k:?}");
    }
}
