//! # tdpipe-analyzer
//!
//! The repo's machine-checked correctness gate, in two layers:
//!
//! 1. **Invariant lint pass** ([`scan`], [`rules`], [`run`]) — a
//!    lightweight Rust source model (comments and string literals
//!    stripped, `#[cfg(test)]` / `mod tests` scopes tracked, per-line
//!    `// analyzer: allow(<rule>) — <justification>` escapes honoured)
//!    plus a rule engine with per-crate rule sets configured in
//!    `analyzer.toml`:
//!
//!    * *determinism rules* for every crate that feeds serialized
//!      reports — no `Instant::now` / `SystemTime`, no
//!      `HashMap`/`HashSet` (iteration order leaks into output), no f64
//!      sorts bypassing `total_cmp`;
//!    * *panic-safety rules* for the supervised runtime and the engine's
//!      execution-plane surface — no non-test
//!      `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`, so every
//!      runtime failure routes through `RuntimeError`/`ExecError`;
//!    * *accounting rules* — lossy float→int `as` casts in
//!      cost/intensity/kvcache accounting code must carry a written
//!      justification.
//!
//!    A committed ratchet baseline ([`findings`]) makes CI fail on any
//!    *new* finding while tolerating (and reporting) the baseline.
//!
//! 2. **Bounded protocol model checker** ([`protocol`]) — the
//!    cluster↔worker supervision protocol (launch → exec → transfer-ack
//!    → completion → `WorkerExit` → shutdown, including every fault
//!    `FaultPlan` can inject) as an explicit state machine, exhaustively
//!    explored over all interleavings for ≤3 stages × ≤3 in-flight
//!    jobs. Machine-checked properties: no deadlock, exactly one
//!    `WorkerExit` per rank on every path, and no completion delivered
//!    after `ShutdownTimedOut`. The checker runs as ordinary `cargo
//!    test`s, so the protocol proof re-runs in tier-1.

#![forbid(unsafe_code)]

pub mod config;
pub mod findings;
pub mod protocol;
pub mod rules;
pub mod run;
pub mod scan;

pub use config::Config;
pub use findings::{Baseline, Finding, RatchetDiff};
pub use run::{analyze_root, Analysis};
