//! # tdpipe-analyzer
//!
//! The repo's machine-checked correctness gate, in two layers:
//!
//! 1. **Invariant lint pass** ([`lexer`], [`model`], [`rules`], [`run`])
//!    — a hand-rolled Rust lexer feeding a per-file token model
//!    (comments and string contents invisible by construction,
//!    `#[cfg(test)]` / `mod tests` scopes tracked, per-line
//!    `// analyzer: allow(<rule>) — <justification>` escapes honoured)
//!    plus a rule engine with per-crate rule sets configured in
//!    `analyzer.toml`:
//!
//!    * *determinism rules* for every crate that feeds serialized
//!      reports — no `Instant::now` / `SystemTime`, no
//!      `HashMap`/`HashSet` (iteration order leaks into output), no f64
//!      sorts bypassing `total_cmp`;
//!    * *panic-safety rules* for the supervised runtime and the engine's
//!      execution-plane surface — no non-test
//!      `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`, so every
//!      runtime failure routes through `RuntimeError`/`ExecError`;
//!    * *accounting rules* — lossy float→int `as` casts in
//!      cost/intensity/kvcache accounting code must carry a written
//!      justification, and the **accounting-dimension check**
//!      (`unit-mismatch`) flags `+`/`-`/comparison between values whose
//!      inferred units differ (tokens vs blocks vs seconds vs bytes vs
//!      count — suffix conventions plus the `[units]` table);
//!    * *semantic rules* — hash-order iteration via collection-type
//!      tracking, bare float→int casts via float-name tracking, and
//!      observer purity: branches gated on `EngineConfig::record_*`
//!      may only assign to the `[observers]` allow-list.
//!
//!    A committed ratchet baseline ([`findings`]) makes CI fail on any
//!    *new* finding while tolerating (and reporting) the baseline.
//!
//! 2. **Bounded protocol model checkers** ([`protocol`],
//!    [`session_protocol`]) — explicit state machines explored
//!    exhaustively by BFS:
//!
//!    * the cluster↔worker supervision protocol (launch → exec →
//!      transfer-ack → completion → `WorkerExit` → shutdown, including
//!      every fault `FaultPlan` can inject), ≤3 stages × ≤3 in-flight
//!      jobs: no deadlock, exactly one `WorkerExit` per rank, no
//!      completion after `ShutdownTimedOut`;
//!    * the session-KV retention protocol (`SessionRetainer`:
//!      retain / claim / pop_oldest_except / reclaim under memory
//!      pressure), ≤3 sessions × ≤2 turns: no block leak, no claim
//!      after drop, retained budget never exceeded, miss ⇒ full
//!      prefill. Mutation scenarios prove both checkers non-vacuous.
//!
//!    The checkers run as ordinary `cargo test`s and in CI's analyze
//!    step (`--check-protocols`), so the proofs re-run in tier-1.

#![forbid(unsafe_code)]

pub mod config;
pub mod findings;
pub mod lexer;
pub mod model;
pub mod protocol;
pub mod rules;
pub mod run;
pub mod session_protocol;

pub use config::Config;
pub use findings::{Baseline, Finding, RatchetDiff};
pub use run::{analyze_root, Analysis};
