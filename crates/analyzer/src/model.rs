//! The token-level source model rules run against.
//!
//! [`FileModel::build`] lexes a file once (see [`crate::lexer`]) and
//! derives everything the rule engine needs:
//!
//! * **code tokens** — the comment-free token stream (strings and chars
//!   are single literal tokens, so their *contents* are invisible to
//!   rules by construction);
//! * **test scopes** — items under `#[cfg(test)]` / `#[test]` and
//!   `mod tests { .. }` blocks are excluded from linting, and
//!   `#[cfg(test)] mod name;` declarations mark whole sibling files as
//!   test-only (see [`FileModel::gated_mods`]);
//! * **allow escapes** — `// analyzer: allow(<rule>) — <justification>`
//!   line comments suppress a named rule on the same line (trailing
//!   comment) or on the next code line (standalone comment line). An
//!   allow without a justification is itself reported.

use crate::lexer::{lex, Token};

/// A parsed `analyzer: allow(...)` escape.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule names being allowed.
    pub rules: Vec<String>,
    /// The written justification (may be empty — reported if so).
    pub justification: String,
    /// Line the escape applies to.
    pub target_line: usize,
    /// Line the comment itself is written on.
    pub comment_line: usize,
}

/// A fully modeled source file.
#[derive(Debug, Clone)]
pub struct FileModel {
    /// Comment-free token stream, in source order.
    pub code: Vec<Token>,
    /// Raw source lines (for excerpts in findings), 0-indexed by line-1.
    pub raw_lines: Vec<String>,
    /// Per-line test-scope flag, 0-indexed by line-1.
    pub in_test: Vec<bool>,
    /// Allow escapes, keyed by target line elsewhere.
    pub allows: Vec<Allow>,
    /// Module names declared as `#[cfg(test)] mod name;` — their sibling
    /// `name.rs` files are test-only.
    pub gated_mods: Vec<String>,
}

impl FileModel {
    /// Lex and model one file's source text.
    pub fn build(text: &str) -> FileModel {
        let all = lex(text);
        let n_lines = text.split('\n').count();
        let code: Vec<Token> = all.iter().filter(|t| !t.is_comment()).cloned().collect();
        let (in_test, gated_mods) = test_scopes(&code, n_lines);
        let mut line_has_code = vec![false; n_lines.max(1)];
        for t in &code {
            if t.line >= 1 && t.line <= n_lines {
                line_has_code[t.line - 1] = true;
            }
        }
        let comments: Vec<(usize, String)> = all
            .iter()
            .filter(|t| t.kind == crate::lexer::TokKind::LineComment)
            .map(|t| (t.line, t.text.trim_start_matches('/').to_string()))
            .collect();
        let allows = parse_allows(&comments, &line_has_code);
        FileModel {
            code,
            raw_lines: text.split('\n').map(str::to_string).collect(),
            in_test,
            allows,
            gated_mods,
        }
    }

    /// Whether any part of `line` sits inside a test-only scope.
    pub fn line_in_test(&self, line: usize) -> bool {
        self.in_test.get(line.saturating_sub(1)).copied().unwrap_or(false)
    }

    /// Raw text of `line`, for excerpts.
    pub fn raw_line(&self, line: usize) -> &str {
        self.raw_lines
            .get(line.saturating_sub(1))
            .map(String::as_str)
            .unwrap_or("")
    }

    /// Allows that apply to `line` and mention `rule`.
    pub fn allows_for(&self, line: usize, rule: &str) -> Option<&Allow> {
        self.allows
            .iter()
            .find(|a| a.target_line == line && a.rules.iter().any(|r| r == rule))
    }
}

/// Walk the code tokens tracking brace depth, `#[cfg(test)]` / `#[test]`
/// attributes, and `mod tests { .. }` blocks. Returns a per-line
/// test-scope flag plus the test-gated `mod name;` declarations.
fn test_scopes(code: &[Token], n_lines: usize) -> (Vec<bool>, Vec<String>) {
    let mut test = vec![false; n_lines.max(1)];
    let mut gated = Vec::new();
    let mut depth = 0i32;
    // Depth (and start line) of each open test scope.
    let mut scopes: Vec<(i32, usize)> = Vec::new();
    let mut pending_test = false;
    let mut pending_mod: Option<String> = None;

    let mark = |test: &mut Vec<bool>, from: usize, to: usize| {
        let hi = to.min(test.len());
        for flag in test.iter_mut().take(hi).skip(from.saturating_sub(1)) {
            *flag = true;
        }
    };

    let mut i = 0usize;
    while i < code.len() {
        let t = &code[i];
        if t.is_punct("#") {
            // Attribute: optional `!`, then a bracketed group.
            let mut j = i + 1;
            if code.get(j).map(|t| t.is_punct("!")).unwrap_or(false) {
                j += 1;
            }
            if code.get(j).map(|t| t.is_punct("[")).unwrap_or(false) {
                let mut k = j + 1;
                let mut brackets = 1i32;
                let mut content = String::new();
                while k < code.len() && brackets > 0 {
                    let tk = &code[k];
                    if tk.is_punct("[") {
                        brackets += 1;
                    } else if tk.is_punct("]") {
                        brackets -= 1;
                    }
                    if brackets > 0 {
                        content.push_str(&tk.text);
                    }
                    k += 1;
                }
                let is_test_attr = content == "test"
                    || (content.starts_with("cfg(")
                        && contains_word(&content, "test")
                        && !content.contains("not(test"));
                if is_test_attr {
                    pending_test = true;
                }
                i = k;
                continue;
            }
            i += 1;
            continue;
        }
        if t.is_punct("{") {
            if pending_test {
                scopes.push((depth, t.line));
                pending_test = false;
            }
            pending_mod = None;
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if let Some(&(d, start)) = scopes.last() {
                if d == depth {
                    scopes.pop();
                    mark(&mut test, start, t.line);
                }
            }
        } else if t.is_punct(";") {
            if pending_test {
                if let Some(name) = pending_mod.take() {
                    gated.push(name);
                }
                pending_test = false;
            }
            pending_mod = None;
        } else if t.is_ident("mod") {
            if let Some(name) = code.get(i + 1).filter(|n| n.kind == crate::lexer::TokKind::Ident)
            {
                // `mod tests {` is a test scope even without the
                // attribute (repo convention).
                if name.text == "tests" {
                    pending_test = true;
                }
                pending_mod = Some(name.text.clone());
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    // Unterminated scopes (shouldn't happen in valid Rust) cover the rest.
    for (_, start) in scopes {
        mark(&mut test, start, n_lines);
    }
    (test, gated)
}

/// `haystack` contains `word` with non-identifier chars on both sides.
pub fn contains_word(haystack: &str, word: &str) -> bool {
    let ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0
            || !haystack[..at].chars().next_back().map(ident).unwrap_or(false);
        let after_ok = !haystack[at + word.len()..]
            .chars()
            .next()
            .map(ident)
            .unwrap_or(false);
        if before_ok && after_ok {
            return true;
        }
        from = at + word.len();
    }
    false
}

/// Parse `analyzer: allow(rule[, rule]) — justification` escapes out of
/// the collected line comments. A standalone allow's justification
/// continues over the following contiguous standalone comment lines, so
/// wrapped justifications are captured whole.
fn parse_allows(comments: &[(usize, String)], line_has_code: &[bool]) -> Vec<Allow> {
    let by_line: std::collections::BTreeMap<usize, &str> =
        comments.iter().map(|(l, t)| (*l, t.as_str())).collect();
    let standalone = |line: usize| {
        !line_has_code.get(line - 1).copied().unwrap_or(false)
    };
    let mut allows = Vec::new();
    for (line, text) in comments {
        let t = text.trim();
        let Some(rest) = t.strip_prefix("analyzer:") else {
            continue;
        };
        let rest = rest.trim_start();
        let (rules, justification) = match rest.strip_prefix("allow(") {
            Some(after) => match after.find(')') {
                Some(close) => {
                    let rules: Vec<String> = after[..close]
                        .split(',')
                        .map(|r| r.trim().to_string())
                        .filter(|r| !r.is_empty())
                        .collect();
                    let tail = after[close + 1..].trim();
                    let just = tail
                        .strip_prefix('\u{2014}') // em dash
                        .or_else(|| tail.strip_prefix("--"))
                        .or_else(|| tail.strip_prefix('-'))
                        .unwrap_or("")
                        .trim()
                        .to_string();
                    (rules, just)
                }
                None => (Vec::new(), String::new()),
            },
            None => (Vec::new(), String::new()),
        };
        // Standalone comment line → applies to the next code line;
        // trailing comment → applies to its own line.
        let own_code = !standalone(*line);
        let mut justification = justification;
        if !own_code {
            // Absorb the wrapped continuation lines of the comment block.
            let mut j = *line + 1;
            while let Some(txt) = by_line.get(&j) {
                let txt = txt.trim();
                if !standalone(j) || txt.starts_with("analyzer:") {
                    break;
                }
                if !justification.is_empty() && !txt.is_empty() {
                    justification.push(' ');
                }
                justification.push_str(txt);
                j += 1;
            }
        }
        let target = if own_code {
            *line
        } else {
            let mut t = line + 1;
            while t <= line_has_code.len() && standalone(t) {
                t += 1;
            }
            t
        };
        allows.push(Allow {
            rules,
            justification,
            target_line: target,
            comment_line: *line,
        });
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_invisible_to_code_tokens() {
        let f = FileModel::build("let x = \"panic!()\"; // HashMap here\nlet y = 1;\n");
        assert!(!f.code.iter().any(|t| t.is_ident("panic")));
        assert!(!f.code.iter().any(|t| t.is_ident("HashMap")));
        assert!(f.code.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn tracks_cfg_test_scopes() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); }\n\
                   }\n\
                   fn live2() {}\n";
        let f = FileModel::build(src);
        assert!(!f.line_in_test(1));
        assert!(f.line_in_test(4));
        assert!(!f.line_in_test(6));
    }

    #[test]
    fn mod_tests_block_is_test_scope_without_attr() {
        let f = FileModel::build("mod tests {\n fn t() {}\n}\nfn live() {}\n");
        assert!(f.line_in_test(2));
        assert!(!f.line_in_test(4));
    }

    #[test]
    fn gated_mod_declarations_are_collected() {
        let f = FileModel::build("pub mod real;\n#[cfg(test)]\nmod proptests;\n");
        assert_eq!(f.gated_mods, vec!["proptests".to_string()]);
    }

    #[test]
    fn not_test_cfg_is_not_a_test_scope() {
        let f = FileModel::build("#[cfg(not(test))]\nfn live() { x.unwrap(); }\n");
        assert!(!f.line_in_test(2));
    }

    #[test]
    fn multiline_attribute_scope_tracks() {
        let src = "#[cfg(\n    test\n)]\nmod tests {\n    fn t() {}\n}\nfn live() {}\n";
        let f = FileModel::build(src);
        assert!(f.line_in_test(5));
        assert!(!f.line_in_test(7));
    }

    #[test]
    fn allow_trailing_and_standalone() {
        let src = "a.unwrap(); // analyzer: allow(no-unwrap) — trailing case\n\
                   // analyzer: allow(no-panic) — standalone case\n\
                   panic!();\n";
        let f = FileModel::build(src);
        let t = f.allows_for(1, "no-unwrap").expect("trailing allow");
        assert_eq!(t.justification, "trailing case");
        let s = f.allows_for(3, "no-panic").expect("standalone allow");
        assert_eq!(s.justification, "standalone case");
    }

    #[test]
    fn allow_without_justification_is_kept_but_empty() {
        let f = FileModel::build("x.unwrap(); // analyzer: allow(no-unwrap)\n");
        let a = f.allows_for(1, "no-unwrap").unwrap();
        assert!(a.justification.is_empty());
    }

    #[test]
    fn allow_inside_string_is_not_an_escape() {
        let f = FileModel::build("let s = \"// analyzer: allow(no-unwrap) — nope\";\nx.unwrap();\n");
        assert!(f.allows.is_empty());
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("cfg(test)", "test"));
        assert!(!contains_word("cfg(testing)", "test"));
    }
}
