//! Bounded model checker for the cluster ↔ worker supervision protocol.
//!
//! [`crates/runtime`] implements the hierarchy-controller as an engine
//! plus a chain of stage workers joined by channels: jobs flow down the
//! chain, completions return from the last stage, every worker reports
//! exactly one `WorkerExit` on a supervision channel after dropping its
//! endpoints, and injected faults (panic / drop / stall / corrupt-ack)
//! must surface as ranked `RuntimeError`s rather than hangs.
//!
//! That protocol is re-stated here as an explicit finite state machine —
//! message queues and worker phases, no threads, no time — and checked
//! by exhaustive breadth-first search over **all** interleavings of
//! small configurations (≤3 stages × ≤3 jobs). Machine-checked
//! properties:
//!
//! 1. **No deadlock**: every reachable terminal state is an engine
//!    `Done` state (timeouts count as progress, but fire only at
//!    *quiescence* — when nothing else in the whole system can move —
//!    which models "the timeout is generous relative to real work").
//! 2. **Exactly one `WorkerExit` per rank per path** — never zero on an
//!    orderly drain, never two.
//! 3. **No completion is consumed after shutdown begins** (in
//!    particular, none after a `ShutdownTimedOut`).
//! 4. A drain timeout (missing exit reports) is reachable **only** under
//!    a stall fault, and every missing rank genuinely never reported.
//!
//! To show the checker can actually *fail*, [`Mutation`] knobs re-inject
//! protocol bugs (double exit reports, unbounded shutdown waits, reading
//! completions during drain); tests assert each one is caught.
//!
//! Modeling notes, kept deliberately aligned with `crates/runtime`:
//!
//! - `TransferMode::Blocking` differs from `Async` only in the virtual
//!   clock, not in message order, so the model checks `Async` and
//!   `Rendezvous` (which adds the start-ack handshake).
//! - `SUPERVISION_GRACE` is assumed sufficient: a worker whose dropped
//!   endpoints are observable has causally already queued its exit
//!   report, so "settling a root cause" drains the supervision queue
//!   synchronously.
//! - Virtual timestamps are abstracted away; a corrupt ack is a tagged
//!   message rather than an impossible `started` time.

use std::collections::{BTreeSet, HashMap, VecDeque};

/// Transfer mode, as far as message order is concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mode {
    /// Fire-and-forget forwarding (also covers `Blocking`).
    Async,
    /// Downstream acks on accept; the sender waits for the ack.
    Rendezvous,
}

/// Injected fault, mirroring `runtime::FaultPlan`. `job` indexes the
/// k-th job *processed by that rank*, as in the real plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// No fault.
    None,
    /// Rank panics while processing its `job`-th job.
    Panic { rank: u8, job: u8 },
    /// Rank silently drops its `job`-th job (no forward, no completion).
    Drop { rank: u8, job: u8 },
    /// Rank wedges forever on accepting its `job`-th job, holding its
    /// channel endpoints (the fault the bounded drain exists for).
    Stall { rank: u8, job: u8 },
    /// Rendezvous only: rank acks its `job`-th job with an impossible
    /// start time; the upstream sender must flag a protocol violation.
    CorruptAck { rank: u8, job: u8 },
}

/// Deliberately re-introduced protocol bugs, proving the checker is not
/// vacuous: each mutation must produce a counterexample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// The faithful protocol.
    None,
    /// The shutdown drain waits forever instead of timing out.
    UnboundedShutdown,
    /// Workers send their exit report twice.
    DoubleExit,
    /// The engine keeps consuming completions after shutdown begins.
    LeakCompletions,
}

/// One model configuration.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Pipeline depth (number of stage workers), 1..=3 in the tests.
    pub world: u8,
    /// Jobs the engine launches, 0..=3 in the tests.
    pub jobs: u8,
    /// Message-order mode.
    pub mode: Mode,
    /// Injected fault.
    pub fault: Fault,
    /// Protocol bug to re-introduce (for negative tests).
    pub mutation: Mutation,
}

/// Failure classification, ordered by severity exactly as
/// `RuntimeError::severity`: a panic outranks a protocol violation
/// outranks a bare disconnect outranks the timeouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ErrKind {
    /// Engine gave up waiting for a completion.
    CompletionTimedOut,
    /// Shutdown drain gave up waiting for exit reports.
    ShutdownTimedOut,
    /// A channel endpoint vanished without a shutdown.
    Disconnected,
    /// Out-of-order completion or corrupt start-ack.
    ProtocolViolation,
    /// A worker panicked.
    Panicked,
}

/// A message in a stage inbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Msg {
    Job(u8),
    Shutdown,
}

/// A start-ack travelling upstream (rendezvous mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Ack {
    corrupt: bool,
}

/// A stage worker's phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum WState {
    /// Blocked on (or able to read) its inbox.
    Running,
    /// Rendezvous sender waiting for the downstream start-ack.
    AwaitAck,
    /// Wedged forever, endpoints held open.
    Stalled,
    /// Gone; endpoints dropped, exit report(s) sent.
    Exited,
}

/// The engine's phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Phase {
    /// Launched `0..n` jobs so far.
    Launching(u8),
    /// All jobs launched; consumed `0..n` completions.
    Awaiting(u8),
    /// Shutdown sent; reaping exit reports.
    Draining,
    /// Terminal. `timed_out` records whether the drain gave up.
    Done { err: Option<ErrKind>, timed_out: bool },
}

/// One global state of the model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    phase: Phase,
    /// Sticky first error the engine observed (the one `run()` returns).
    engine_err: Option<ErrKind>,
    /// Engine's job sender into rank 0 still open.
    to_first_open: bool,
    /// Per-rank stage inbox.
    inboxes: Vec<VecDeque<Msg>>,
    /// `acks[r]`: start-acks readable by rank `r` (sent by rank `r+1`).
    acks: Vec<VecDeque<Ack>>,
    /// Completion stream from the last rank to the engine.
    completions: VecDeque<u8>,
    workers: Vec<WState>,
    /// Jobs accepted so far per rank (fault indexing).
    processed: Vec<u8>,
    /// Supervision channel: (rank, outcome) exit reports in flight.
    sup: VecDeque<(u8, Option<ErrKind>)>,
    /// Exit reports each rank has *sent* (property: exactly one).
    exit_sent: Vec<u8>,
    /// Exit reports the engine has received, per rank.
    drained: Vec<bool>,
    /// Worst error among received exit reports.
    drained_worst: Option<ErrKind>,
}

/// A property violation, with the interleaving that reaches it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong.
    pub message: String,
    /// Transition labels from the initial state to the violation.
    pub trace: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.message)?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>3}. {step}", i + 1)?;
        }
        Ok(())
    }
}

/// What an exhaustive check of one scenario found.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Distinct states explored.
    pub states: usize,
    /// Every terminal outcome reachable by some interleaving.
    pub outcomes: BTreeSet<Option<ErrKind>>,
    /// Terminal states reached via a shutdown-drain timeout.
    pub drain_timeouts: usize,
}

type Step = (String, State, Option<String>);

fn initial(sc: &Scenario) -> State {
    let w = sc.world as usize;
    State {
        phase: if sc.jobs == 0 {
            Phase::Awaiting(0)
        } else {
            Phase::Launching(0)
        },
        engine_err: None,
        to_first_open: true,
        inboxes: vec![VecDeque::new(); w],
        acks: vec![VecDeque::new(); w],
        completions: VecDeque::new(),
        workers: vec![WState::Running; w],
        processed: vec![0; w],
        sup: VecDeque::new(),
        exit_sent: vec![0; w],
        drained: vec![false; w],
        drained_worst: None,
    }
}

/// Record a worker exit: drop endpoints, send the report(s).
fn exit(sc: &Scenario, s: &mut State, r: usize, outcome: Option<ErrKind>) -> Option<String> {
    s.workers[r] = WState::Exited;
    let sends = if sc.mutation == Mutation::DoubleExit { 2 } else { 1 };
    for _ in 0..sends {
        s.sup.push_back((r as u8, outcome));
        s.exit_sent[r] += 1;
    }
    if s.exit_sent[r] > 1 {
        Some(format!(
            "rank {r} sent {} WorkerExit reports (exactly one required)",
            s.exit_sent[r]
        ))
    } else {
        None
    }
}

/// Drain every queued exit report into the engine's books. Models
/// `settled_root_cause` under the assumption that `SUPERVISION_GRACE`
/// always suffices: an observable endpoint drop means the report is
/// already causally in flight.
fn settle_drain(s: &mut State) {
    while let Some((rank, outcome)) = s.sup.pop_front() {
        s.drained[rank as usize] = true;
        if let Some(e) = outcome {
            s.drained_worst = Some(s.drained_worst.map_or(e, |w| w.max(e)));
        }
    }
}

/// Begin shutdown: send `Shutdown` to rank 0 if it still has a receiver,
/// then drop the engine's job sender. When a preceding `settle_drain`
/// already reaped every exit report there is nothing left to wait for.
fn enter_draining(s: &mut State) {
    if s.workers[0] != WState::Exited {
        s.inboxes[0].push_back(Msg::Shutdown);
    }
    s.to_first_open = false;
    s.phase = if s.sup.is_empty() && s.drained.iter().all(|d| *d) {
        Phase::Done {
            err: s.engine_err.or(s.drained_worst),
            timed_out: false,
        }
    } else {
        Phase::Draining
    };
}

fn engine_steps(sc: &Scenario, s: &State, out: &mut Vec<Step>) {
    match s.phase {
        Phase::Launching(next) => {
            let mut t = s.clone();
            if s.workers[0] == WState::Exited {
                // The send fails; settle a root cause and shut down.
                settle_drain(&mut t);
                t.engine_err = Some(t.drained_worst.unwrap_or(ErrKind::Disconnected));
                enter_draining(&mut t);
                out.push((format!("engine: launch of job {next} fails (rank 0 gone)"), t, None));
            } else {
                t.inboxes[0].push_back(Msg::Job(next));
                t.phase = if next + 1 == sc.jobs {
                    Phase::Awaiting(0)
                } else {
                    Phase::Launching(next + 1)
                };
                out.push((format!("engine: launch job {next}"), t, None));
            }
        }
        Phase::Awaiting(consumed) => {
            if consumed == sc.jobs {
                let mut t = s.clone();
                enter_draining(&mut t);
                out.push(("engine: all jobs done, begin shutdown".to_string(), t, None));
            } else if let Some(&id) = s.completions.front() {
                let mut t = s.clone();
                t.completions.pop_front();
                if id == consumed {
                    t.phase = Phase::Awaiting(consumed + 1);
                    out.push((format!("engine: consume completion {id}"), t, None));
                } else {
                    t.engine_err = Some(ErrKind::ProtocolViolation);
                    enter_draining(&mut t);
                    out.push((
                        format!("engine: out-of-order completion {id} (expected {consumed})"),
                        t,
                        None,
                    ));
                }
            } else if s.workers[sc.world as usize - 1] == WState::Exited {
                // Completion stream disconnected with nothing buffered.
                let mut t = s.clone();
                settle_drain(&mut t);
                t.engine_err = Some(t.drained_worst.unwrap_or(ErrKind::Disconnected));
                enter_draining(&mut t);
                out.push(("engine: completion stream disconnected".to_string(), t, None));
            }
        }
        Phase::Draining => {
            if let Some(&(rank, outcome)) = s.sup.front() {
                let mut t = s.clone();
                t.sup.pop_front();
                t.drained[rank as usize] = true;
                if let Some(e) = outcome {
                    t.drained_worst = Some(t.drained_worst.map_or(e, |w| w.max(e)));
                }
                if t.drained.iter().all(|d| *d) {
                    t.phase = Phase::Done {
                        err: t.engine_err.or(t.drained_worst),
                        timed_out: false,
                    };
                }
                out.push((format!("engine: reap exit report from rank {rank}"), t, None));
            }
            if sc.mutation == Mutation::LeakCompletions {
                if let Some(&id) = s.completions.front() {
                    let mut t = s.clone();
                    t.completions.pop_front();
                    out.push((
                        format!("engine: consume completion {id} during drain"),
                        t,
                        Some(format!(
                            "completion {id} consumed after shutdown began"
                        )),
                    ));
                }
            }
        }
        Phase::Done { .. } => {}
    }
}

fn worker_steps(sc: &Scenario, s: &State, r: usize, out: &mut Vec<Step>) {
    let world = sc.world as usize;
    let last = r == world - 1;
    match s.workers[r] {
        WState::Stalled | WState::Exited => {}
        WState::AwaitAck => {
            if let Some(&ack) = s.acks[r].front() {
                let mut t = s.clone();
                t.acks[r].pop_front();
                if ack.corrupt {
                    let v = exit(sc, &mut t, r, Some(ErrKind::ProtocolViolation));
                    out.push((format!("w{r}: corrupt start-ack, exits"), t, v));
                } else {
                    t.workers[r] = WState::Running;
                    out.push((format!("w{r}: start-ack received"), t, None));
                }
            } else if s.workers[r + 1] == WState::Exited {
                let mut t = s.clone();
                let v = exit(sc, &mut t, r, Some(ErrKind::Disconnected));
                out.push((format!("w{r}: downstream died before acking"), t, v));
            }
        }
        WState::Running => {
            if let Some(&msg) = s.inboxes[r].front() {
                let mut t = s.clone();
                t.inboxes[r].pop_front();
                match msg {
                    Msg::Shutdown => {
                        if !last && t.workers[r + 1] == WState::Exited {
                            let v = exit(sc, &mut t, r, Some(ErrKind::Disconnected));
                            out.push((format!("w{r}: downstream gone during shutdown"), t, v));
                        } else {
                            if !last {
                                t.inboxes[r + 1].push_back(Msg::Shutdown);
                            }
                            let v = exit(sc, &mut t, r, None);
                            out.push((format!("w{r}: shutdown forwarded, exits cleanly"), t, v));
                        }
                    }
                    Msg::Job(id) => {
                        let k = t.processed[r];
                        t.processed[r] += 1;
                        let hit = |f: Fault| match f {
                            Fault::Stall { rank, job }
                            | Fault::Panic { rank, job }
                            | Fault::Drop { rank, job }
                            | Fault::CorruptAck { rank, job } => {
                                rank as usize == r && job == k
                            }
                            Fault::None => false,
                        };
                        let fires = hit(sc.fault);
                        if fires && matches!(sc.fault, Fault::Stall { .. }) {
                            t.workers[r] = WState::Stalled;
                            out.push((format!("w{r}: stalls on job {id}"), t, None));
                            return;
                        }
                        if fires && matches!(sc.fault, Fault::Panic { .. }) {
                            let v = exit(sc, &mut t, r, Some(ErrKind::Panicked));
                            out.push((format!("w{r}: panics on job {id}"), t, v));
                            return;
                        }
                        // Rendezvous: ack the upstream sender on accept.
                        if sc.mode == Mode::Rendezvous && r > 0 {
                            if t.workers[r - 1] == WState::Exited {
                                let v = exit(sc, &mut t, r, Some(ErrKind::Disconnected));
                                out.push((format!("w{r}: ack listener gone"), t, v));
                                return;
                            }
                            let corrupt = fires && matches!(sc.fault, Fault::CorruptAck { .. });
                            t.acks[r - 1].push_back(Ack { corrupt });
                        }
                        let dropped = fires && matches!(sc.fault, Fault::Drop { .. });
                        if last {
                            if !dropped {
                                t.completions.push_back(id);
                            }
                            out.push((format!("w{r}: complete job {id}"), t, None));
                        } else if dropped {
                            out.push((format!("w{r}: drops job {id}"), t, None));
                        } else if t.workers[r + 1] == WState::Exited {
                            let v = exit(sc, &mut t, r, Some(ErrKind::Disconnected));
                            out.push((format!("w{r}: downstream gone, exits"), t, v));
                        } else {
                            t.inboxes[r + 1].push_back(Msg::Job(id));
                            if sc.mode == Mode::Rendezvous {
                                t.workers[r] = WState::AwaitAck;
                            }
                            out.push((format!("w{r}: forward job {id}"), t, None));
                        }
                    }
                }
            } else {
                // Empty inbox: a `recv` would return only if the sender
                // side is gone (engine dropped it / upstream exited).
                let upstream_gone = if r == 0 {
                    !s.to_first_open
                } else {
                    s.workers[r - 1] == WState::Exited
                };
                if upstream_gone {
                    let mut t = s.clone();
                    let v = exit(sc, &mut t, r, Some(ErrKind::Disconnected));
                    out.push((format!("w{r}: inbox closed before shutdown"), t, v));
                }
            }
        }
    }
}

/// Timeout transitions, enabled only at quiescence (no other transition
/// anywhere) — the model's statement that real timeouts are generous.
fn timeout_steps(sc: &Scenario, s: &State, out: &mut Vec<Step>) {
    match s.phase {
        Phase::Awaiting(consumed) if consumed < sc.jobs && s.completions.is_empty() => {
            let mut t = s.clone();
            settle_drain(&mut t);
            t.engine_err = Some(t.drained_worst.unwrap_or(ErrKind::CompletionTimedOut));
            enter_draining(&mut t);
            out.push(("engine: completion wait times out".to_string(), t, None));
        }
        Phase::Draining if sc.mutation != Mutation::UnboundedShutdown => {
            let missing: Vec<usize> =
                (0..sc.world as usize).filter(|&r| !s.drained[r]).collect();
            if missing.is_empty() {
                return;
            }
            let mut t = s.clone();
            let mut violation = None;
            for &r in &missing {
                if t.exit_sent[r] > 0 {
                    violation = Some(format!(
                        "drain timed out while rank {r}'s sent exit report was dropped"
                    ));
                }
            }
            t.phase = Phase::Done {
                err: Some(t.engine_err.unwrap_or(ErrKind::ShutdownTimedOut)),
                timed_out: true,
            };
            out.push((
                format!("engine: shutdown drain times out (missing ranks {missing:?})"),
                t,
                violation,
            ));
        }
        _ => {}
    }
}

fn successors(sc: &Scenario, s: &State) -> Vec<Step> {
    let mut out = Vec::new();
    engine_steps(sc, s, &mut out);
    for r in 0..sc.world as usize {
        worker_steps(sc, s, r, &mut out);
    }
    if out.is_empty() {
        timeout_steps(sc, s, &mut out);
    }
    out
}

/// Safety valve: scenarios in the checked range stay far below this.
const MAX_STATES: usize = 1_000_000;

/// Exhaustively check one scenario over all interleavings.
pub fn check(sc: &Scenario) -> Result<Summary, Violation> {
    assert!(sc.world >= 1, "need at least one stage");
    let init = initial(sc);
    let mut states: Vec<State> = vec![init.clone()];
    let mut parent: Vec<Option<(usize, String)>> = vec![None];
    let mut seen: HashMap<State, usize> = HashMap::new();
    seen.insert(init, 0);
    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    let mut outcomes = BTreeSet::new();
    let mut drain_timeouts = 0usize;

    let trace_to = |parent: &[Option<(usize, String)>], mut i: usize, extra: Option<String>| {
        let mut labels = Vec::new();
        if let Some(e) = extra {
            labels.push(e);
        }
        while let Some((p, label)) = &parent[i] {
            labels.push(label.clone());
            i = *p;
        }
        labels.reverse();
        labels
    };

    while let Some(i) = queue.pop_front() {
        let state = states[i].clone();
        if let Phase::Done { err, timed_out } = state.phase {
            // Terminal-state properties.
            if timed_out {
                drain_timeouts += 1;
                if !matches!(sc.fault, Fault::Stall { .. }) {
                    return Err(Violation {
                        message: format!(
                            "shutdown drain timed out without a stall fault ({:?})",
                            sc.fault
                        ),
                        trace: trace_to(&parent, i, None),
                    });
                }
            } else {
                for r in 0..sc.world as usize {
                    if state.exit_sent[r] != 1 {
                        return Err(Violation {
                            message: format!(
                                "orderly drain finished but rank {r} sent {} exit report(s)",
                                state.exit_sent[r]
                            ),
                            trace: trace_to(&parent, i, None),
                        });
                    }
                }
            }
            outcomes.insert(err);
            continue;
        }
        let succs = successors(sc, &state);
        if succs.is_empty() {
            return Err(Violation {
                message: "deadlock: no transition enabled and engine not Done".to_string(),
                trace: trace_to(&parent, i, None),
            });
        }
        for (label, next, violation) in succs {
            if let Some(message) = violation {
                return Err(Violation {
                    message,
                    trace: trace_to(&parent, i, Some(label)),
                });
            }
            if seen.contains_key(&next) {
                continue;
            }
            let idx = states.len();
            states.push(next.clone());
            parent.push(Some((i, label)));
            seen.insert(next, idx);
            queue.push_back(idx);
            if states.len() > MAX_STATES {
                return Err(Violation {
                    message: format!("state space exceeded {MAX_STATES} states"),
                    trace: Vec::new(),
                });
            }
        }
    }
    Ok(Summary {
        states: states.len(),
        outcomes,
        drain_timeouts,
    })
}

/// Every faithful-protocol scenario in the bounded range: all pipeline
/// depths, job counts, both message modes, and every fault placement.
pub fn all_scenarios(max_world: u8, max_jobs: u8) -> Vec<Scenario> {
    let mut out = Vec::new();
    for world in 1..=max_world {
        for jobs in 0..=max_jobs {
            for mode in [Mode::Async, Mode::Rendezvous] {
                let mut faults = vec![Fault::None];
                for rank in 0..world {
                    for job in 0..jobs {
                        faults.push(Fault::Panic { rank, job });
                        faults.push(Fault::Drop { rank, job });
                        faults.push(Fault::Stall { rank, job });
                        if mode == Mode::Rendezvous && rank > 0 {
                            faults.push(Fault::CorruptAck { rank, job });
                        }
                    }
                }
                for fault in faults {
                    out.push(Scenario {
                        world,
                        jobs,
                        mode,
                        fault,
                        mutation: Mutation::None,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc(world: u8, jobs: u8, mode: Mode, fault: Fault, mutation: Mutation) -> Scenario {
        Scenario { world, jobs, mode, fault, mutation }
    }

    #[test]
    fn fault_free_paths_all_succeed() {
        for mode in [Mode::Async, Mode::Rendezvous] {
            let s = check(&sc(2, 2, mode, Fault::None, Mutation::None))
                .unwrap_or_else(|v| panic!("{v}"));
            assert_eq!(s.outcomes.iter().collect::<Vec<_>>(), vec![&None]);
            assert_eq!(s.drain_timeouts, 0);
        }
    }

    #[test]
    fn panic_surfaces_as_worst_cause() {
        let s = check(&sc(3, 2, Mode::Async, Fault::Panic { rank: 1, job: 0 }, Mutation::None))
            .unwrap_or_else(|v| panic!("{v}"));
        // Every interleaving must end in an error, and at least one path
        // must pin the panic as the root cause.
        assert!(!s.outcomes.contains(&None));
        assert!(s.outcomes.contains(&Some(ErrKind::Panicked)), "{:?}", s.outcomes);
    }

    #[test]
    fn stall_is_the_only_source_of_drain_timeouts() {
        let s = check(&sc(2, 2, Mode::Async, Fault::Stall { rank: 0, job: 1 }, Mutation::None))
            .unwrap_or_else(|v| panic!("{v}"));
        assert!(s.drain_timeouts > 0);
    }

    #[test]
    fn corrupt_ack_is_flagged_by_upstream() {
        let s = check(&sc(
            2,
            1,
            Mode::Rendezvous,
            Fault::CorruptAck { rank: 1, job: 0 },
            Mutation::None,
        ))
        .unwrap_or_else(|v| panic!("{v}"));
        assert!(s.outcomes.contains(&Some(ErrKind::ProtocolViolation)), "{:?}", s.outcomes);
    }

    #[test]
    fn double_exit_mutation_is_caught() {
        let v = check(&sc(1, 0, Mode::Async, Fault::None, Mutation::DoubleExit))
            .expect_err("double exit must be flagged");
        assert!(v.message.contains("WorkerExit"), "{v}");
        assert!(!v.trace.is_empty());
    }

    #[test]
    fn unbounded_shutdown_mutation_deadlocks() {
        let v = check(&sc(
            2,
            1,
            Mode::Async,
            Fault::Stall { rank: 0, job: 0 },
            Mutation::UnboundedShutdown,
        ))
        .expect_err("missing timeout must deadlock");
        assert!(v.message.contains("deadlock"), "{v}");
    }

    #[test]
    fn leaked_completion_mutation_is_caught() {
        let v = check(&sc(
            1,
            3,
            Mode::Async,
            Fault::Drop { rank: 0, job: 0 },
            Mutation::LeakCompletions,
        ))
        .expect_err("completion after shutdown must be flagged");
        assert!(v.message.contains("after shutdown"), "{v}");
    }
}
