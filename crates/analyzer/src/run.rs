//! The lint driver: walk the configured paths, model each file once,
//! apply every rule set that covers it, honour allow escapes.

use crate::config::Config;
use crate::findings::{Finding, Suppressed};
use crate::model::FileModel;
use crate::rules::{rule_by_name, RuleCtx};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Everything one analysis pass produced.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Unsuppressed findings (sorted by file/line/rule).
    pub findings: Vec<Finding>,
    /// Findings suppressed by a justified allow escape.
    pub suppressed: Vec<Suppressed>,
    /// Source files scanned at least once.
    pub files_scanned: usize,
}

/// Directory names never descended into: test and bench code is exempt
/// from the production invariants, generated/vcs dirs are noise.
const SKIP_DIRS: [&str; 4] = ["tests", "benches", "target", ".git"];

/// Run the configured lint pass against a repo root.
pub fn analyze_root(root: &Path, cfg: &Config) -> Result<Analysis, String> {
    // path → (set index) pairs, preserving set order per file.
    let mut file_sets: BTreeMap<PathBuf, Vec<usize>> = BTreeMap::new();
    for (si, set) in cfg.sets.iter().enumerate() {
        for p in &set.paths {
            let full = root.join(p);
            let mut files = Vec::new();
            if full.is_dir() {
                walk(&full, &mut files)
                    .map_err(|e| format!("walking {}: {e}", full.display()))?;
            } else if full.is_file() {
                files.push(full.clone());
            } else {
                return Err(format!(
                    "set `{}` path `{p}` does not exist under {}",
                    set.name,
                    root.display()
                ));
            }
            for f in files {
                file_sets.entry(f).or_default().push(si);
            }
        }
    }

    // Model every file once.
    let mut models: BTreeMap<PathBuf, FileModel> = BTreeMap::new();
    for path in file_sets.keys() {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        models.insert(path.clone(), FileModel::build(&text));
    }

    // Files declared `#[cfg(test)] mod name;` anywhere in their directory
    // are test-only: skip them wholesale.
    let mut test_files: Vec<PathBuf> = Vec::new();
    for (path, model) in &models {
        let Some(dir) = path.parent() else { continue };
        for name in &model.gated_mods {
            test_files.push(dir.join(format!("{name}.rs")));
            test_files.push(dir.join(name).join("mod.rs"));
        }
    }

    let ctx = RuleCtx {
        units: &cfg.units,
        observers: &cfg.observers,
    };
    let mut out = Analysis {
        files_scanned: models.len(),
        ..Analysis::default()
    };
    for (path, set_ids) in &file_sets {
        if test_files.iter().any(|t| t == path) {
            continue;
        }
        let model = &models[path];
        let rel = rel_name(root, path);
        // Union of rules across the sets covering this file, first set wins
        // the ordering; a rule listed twice runs once.
        let mut rules_seen: Vec<&str> = Vec::new();
        for &si in set_ids {
            for rule in &cfg.sets[si].rules {
                if !rules_seen.contains(&rule.as_str()) {
                    rules_seen.push(rule);
                }
            }
        }
        for rule_name in &rules_seen {
            let Some(rule) = rule_by_name(rule_name) else {
                // Config validation rejects unknown rules before this
                // point; skipping keeps the driver total anyway.
                continue;
            };
            let mut hit_lines: Vec<usize> = Vec::new();
            for hit in (rule.check)(model, &ctx) {
                if model.line_in_test(hit.line) || hit_lines.contains(&hit.line) {
                    continue; // test-scoped, or a second hit on the same line
                }
                hit_lines.push(hit.line);
                let finding = Finding {
                    file: rel.clone(),
                    line: hit.line,
                    rule: (*rule_name).to_string(),
                    message: format!("{}: `{}`", hit.message, excerpt(model.raw_line(hit.line))),
                };
                match model.allows_for(hit.line, rule_name) {
                    Some(allow) if !allow.justification.is_empty() => {
                        out.suppressed.push(Suppressed {
                            finding,
                            justification: allow.justification.clone(),
                        });
                    }
                    Some(_) => {
                        // An allow with no written justification does not
                        // count; the finding stands, upgraded.
                        out.findings.push(Finding {
                            message: format!(
                                "{} (allow escape present but carries no justification)",
                                hit.message
                            ),
                            ..finding
                        });
                    }
                    None => out.findings.push(finding),
                }
            }
        }
        // Malformed escapes: an `analyzer:` comment that parses to no
        // rules is a typo that would silently not suppress.
        for allow in &model.allows {
            if allow.rules.is_empty() {
                out.findings.push(Finding {
                    file: rel.clone(),
                    line: allow.comment_line,
                    rule: "invalid-allow".to_string(),
                    message: "malformed `analyzer: allow(..)` escape (no rule names parsed)"
                        .to_string(),
                });
            } else {
                for r in &allow.rules {
                    if rule_by_name(r).is_none() {
                        out.findings.push(Finding {
                            file: rel.clone(),
                            line: allow.comment_line,
                            rule: "invalid-allow".to_string(),
                            message: format!("allow escape names unknown rule `{r}`"),
                        });
                    }
                }
            }
        }
    }
    out.findings.sort();
    out.findings.dedup();
    out.suppressed.sort_by(|a, b| a.finding.cmp(&b.finding));
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_name(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn excerpt(raw: &str) -> String {
    let t = raw.trim();
    if t.len() > 80 {
        format!("{}…", &t[..t.char_indices().take(79).last().map(|(i, c)| i + c.len_utf8()).unwrap_or(0)])
    } else {
        t.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excerpt_truncates_on_char_boundary() {
        let long = "x".repeat(200);
        let e = excerpt(&long);
        assert!(e.chars().count() <= 80);
        assert!(e.ends_with('…'));
        assert_eq!(excerpt("short"), "short");
    }
}
