//! `analyzer` — the repo's invariant lint gate.
//!
//! ```text
//! analyzer [--root DIR] [--config FILE] [--baseline FILE]
//!          [--json] [--update-baseline] [--list-rules] [-q]
//! ```
//!
//! Exit status: 0 when no finding exceeds the ratchet baseline, 1 when
//! new findings exist (or on usage/config errors, status 2).

use analyzer::{analyze_root, Baseline, Config};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: PathBuf,
    config: PathBuf,
    baseline: PathBuf,
    json: bool,
    update_baseline: bool,
    list_rules: bool,
    quiet: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        config: PathBuf::new(),
        baseline: PathBuf::new(),
        json: false,
        update_baseline: false,
        list_rules: false,
        quiet: false,
    };
    let mut config_set = false;
    let mut baseline_set = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a value")?);
            }
            "--config" => {
                opts.config = PathBuf::from(args.next().ok_or("--config needs a value")?);
                config_set = true;
            }
            "--baseline" => {
                opts.baseline = PathBuf::from(args.next().ok_or("--baseline needs a value")?);
                baseline_set = true;
            }
            "--json" => opts.json = true,
            "--update-baseline" => opts.update_baseline = true,
            "--list-rules" => opts.list_rules = true,
            "-q" | "--quiet" => opts.quiet = true,
            "-h" | "--help" => {
                println!(
                    "analyzer [--root DIR] [--config FILE] [--baseline FILE] \
                     [--json] [--update-baseline] [--list-rules] [-q]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !config_set {
        opts.config = opts.root.join("analyzer.toml");
    }
    if !baseline_set {
        opts.baseline = opts.root.join("analyzer.baseline.json");
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("analyzer: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in analyzer::rules::registry() {
            println!("{:<22} {}", rule.name, rule.description.split_whitespace().collect::<Vec<_>>().join(" "));
        }
        return ExitCode::SUCCESS;
    }

    let cfg = match Config::load(&opts.config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("analyzer: {e}");
            return ExitCode::from(2);
        }
    };
    let analysis = match analyze_root(&opts.root, &cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("analyzer: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.update_baseline {
        let base = Baseline::from_findings(&analysis.findings);
        if let Err(e) = std::fs::write(&opts.baseline, base.to_json()) {
            eprintln!("analyzer: cannot write {}: {e}", opts.baseline.display());
            return ExitCode::from(2);
        }
        if !opts.quiet {
            println!(
                "analyzer: baseline updated ({} tolerated finding(s) across {} file(s) scanned)",
                base.total(),
                analysis.files_scanned
            );
        }
        return ExitCode::SUCCESS;
    }

    let baseline = match Baseline::load(&opts.baseline) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("analyzer: {e}");
            return ExitCode::from(2);
        }
    };
    let diff = baseline.diff(&analysis.findings);

    if opts.json {
        // Machine-readable: the new findings plus suppression inventory.
        use serde::{Serialize, Value};
        let report = Value::Map(vec![
            ("new_findings".to_string(), diff.new.to_value()),
            ("suppressed".to_string(), analysis.suppressed.to_value()),
            (
                "files_scanned".to_string(),
                Value::UInt(analysis.files_scanned as u64),
            ),
            (
                "baseline_total".to_string(),
                Value::UInt(baseline.total() as u64),
            ),
        ]);
        match serde_json::to_string_pretty(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("analyzer: JSON serialization failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        for f in &diff.new {
            println!("{f}");
        }
        if !opts.quiet {
            if !diff.fixed.is_empty() {
                let freed: usize = diff.fixed.iter().map(|e| e.count).sum();
                println!(
                    "analyzer: note: {freed} baselined finding(s) no longer fire — \
                     run with --update-baseline to ratchet down"
                );
            }
            println!(
                "analyzer: {} file(s) scanned, {} suppressed by justified allows, \
                 {} new finding(s)",
                analysis.files_scanned,
                analysis.suppressed.len(),
                diff.new.len()
            );
        }
    }

    if diff.new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
