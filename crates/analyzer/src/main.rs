//! `analyzer` — the repo's invariant lint gate.
//!
//! ```text
//! analyzer [--root DIR] [--config FILE] [--baseline FILE]
//!          [--json] [--update-baseline] [--list-rules]
//!          [--explain RULE] [--check-protocols] [-q]
//! ```
//!
//! Exit status: 0 when no finding exceeds the ratchet baseline (and, for
//! `--check-protocols`, when both bounded model checkers pass), 1 when
//! new findings or protocol violations exist (usage/config errors: 2).

use analyzer::{analyze_root, Baseline, Config};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: PathBuf,
    config: PathBuf,
    baseline: PathBuf,
    json: bool,
    update_baseline: bool,
    list_rules: bool,
    explain: Option<String>,
    check_protocols: bool,
    quiet: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        config: PathBuf::new(),
        baseline: PathBuf::new(),
        json: false,
        update_baseline: false,
        list_rules: false,
        explain: None,
        check_protocols: false,
        quiet: false,
    };
    let mut config_set = false;
    let mut baseline_set = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a value")?);
            }
            "--config" => {
                opts.config = PathBuf::from(args.next().ok_or("--config needs a value")?);
                config_set = true;
            }
            "--baseline" => {
                opts.baseline = PathBuf::from(args.next().ok_or("--baseline needs a value")?);
                baseline_set = true;
            }
            "--json" => opts.json = true,
            "--update-baseline" => opts.update_baseline = true,
            "--list-rules" => opts.list_rules = true,
            "--explain" => {
                opts.explain = Some(args.next().ok_or("--explain needs a rule name")?);
            }
            "--check-protocols" => opts.check_protocols = true,
            "-q" | "--quiet" => opts.quiet = true,
            "-h" | "--help" => {
                println!(
                    "analyzer [--root DIR] [--config FILE] [--baseline FILE] \
                     [--json] [--update-baseline] [--list-rules] [--explain RULE] \
                     [--check-protocols] [-q]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !config_set {
        opts.config = opts.root.join("analyzer.toml");
    }
    if !baseline_set {
        opts.baseline = opts.root.join("analyzer.baseline.json");
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("analyzer: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in analyzer::rules::registry() {
            println!("{:<22} {}", rule.name, rule.description.split_whitespace().collect::<Vec<_>>().join(" "));
        }
        println!();
        println!("run `analyzer --explain <rule>` for the rationale, a firing example,");
        println!("and the allow-escape syntax of any rule above.");
        return ExitCode::SUCCESS;
    }

    if let Some(name) = &opts.explain {
        let Some(rule) = analyzer::rules::rule_by_name(name) else {
            eprintln!("analyzer: unknown rule `{name}` (see `analyzer --list-rules`)");
            return ExitCode::from(2);
        };
        let squash = |s: &str| s.split_whitespace().collect::<Vec<_>>().join(" ");
        println!("{}", rule.name);
        println!("{}", "=".repeat(rule.name.len()));
        println!();
        println!("{}", squash(rule.description));
        println!();
        println!("Why it exists here:");
        println!("  {}", squash(rule.rationale));
        println!();
        println!("Example firing:");
        println!("  {}", rule.example);
        println!();
        println!("Escaping a justified exception:");
        println!("  code();  // analyzer: allow({}) — <why this site is safe>", rule.name);
        println!();
        println!("  A standalone `// analyzer: allow(..)` comment line applies to the");
        println!("  next code line instead. The justification is mandatory: an allow");
        println!("  without one does not suppress, it upgrades the finding.");
        return ExitCode::SUCCESS;
    }

    if opts.check_protocols {
        return check_protocols(opts.quiet);
    }

    let cfg = match Config::load(&opts.config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("analyzer: {e}");
            return ExitCode::from(2);
        }
    };
    let analysis = match analyze_root(&opts.root, &cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("analyzer: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.update_baseline {
        let base = Baseline::from_findings(&analysis.findings);
        if let Err(e) = std::fs::write(&opts.baseline, base.to_json()) {
            eprintln!("analyzer: cannot write {}: {e}", opts.baseline.display());
            return ExitCode::from(2);
        }
        if !opts.quiet {
            println!(
                "analyzer: baseline updated ({} tolerated finding(s) across {} file(s) scanned)",
                base.total(),
                analysis.files_scanned
            );
        }
        return ExitCode::SUCCESS;
    }

    let baseline = match Baseline::load(&opts.baseline) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("analyzer: {e}");
            return ExitCode::from(2);
        }
    };
    let diff = baseline.diff(&analysis.findings);

    if opts.json {
        // Machine-readable: the new findings plus suppression inventory.
        use serde::{Serialize, Value};
        let report = Value::Map(vec![
            ("new_findings".to_string(), diff.new.to_value()),
            ("suppressed".to_string(), analysis.suppressed.to_value()),
            (
                "files_scanned".to_string(),
                Value::UInt(analysis.files_scanned as u64),
            ),
            (
                "baseline_total".to_string(),
                Value::UInt(baseline.total() as u64),
            ),
        ]);
        match serde_json::to_string_pretty(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("analyzer: JSON serialization failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        for f in &diff.new {
            println!("{f}");
        }
        if !opts.quiet {
            if !diff.fixed.is_empty() {
                let freed: usize = diff.fixed.iter().map(|e| e.count).sum();
                println!(
                    "analyzer: note: {freed} baselined finding(s) no longer fire — \
                     run with --update-baseline to ratchet down"
                );
            }
            println!(
                "analyzer: {} file(s) scanned, {} suppressed by justified allows, \
                 {} new finding(s)",
                analysis.files_scanned,
                analysis.suppressed.len(),
                diff.new.len()
            );
        }
    }

    if diff.new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Run both bounded model checkers: the cluster↔worker supervision
/// protocol sweep and the session-KV retention sweep, plus the seeded
/// mutation scenarios that prove the session checker non-vacuous.
fn check_protocols(quiet: bool) -> ExitCode {
    use analyzer::protocol;
    use analyzer::session_protocol::{
        all_session_scenarios, check_session, SessionMutation, SessionScenario,
    };

    let mut states = 0usize;
    let cluster = protocol::all_scenarios(3, 3);
    let cluster_count = cluster.len();
    for sc in &cluster {
        match protocol::check(sc) {
            Ok(s) => states += s.states,
            Err(v) => {
                eprintln!("analyzer: cluster protocol: {v}");
                return ExitCode::FAILURE;
            }
        }
    }

    let sessions = all_session_scenarios(3, 2);
    let session_count = sessions.len();
    let (mut hits, mut misses, mut drops) = (0usize, 0usize, 0usize);
    for sc in &sessions {
        match check_session(sc) {
            Ok(s) => {
                states += s.states;
                hits += s.hits;
                misses += s.misses;
                drops += s.drops;
            }
            Err(v) => {
                eprintln!("analyzer: session protocol: {v}");
                return ExitCode::FAILURE;
            }
        }
    }
    if hits == 0 || misses == 0 || drops == 0 {
        eprintln!(
            "analyzer: session sweep is vacuous (hits {hits}, misses {misses}, \
             drops {drops}) — the scenarios no longer exercise the protocol"
        );
        return ExitCode::FAILURE;
    }

    // Non-vacuity: every seeded bug must produce a counterexample.
    let base = SessionScenario {
        sessions: 2,
        turns: 2,
        total_blocks: 7,
        budget_blocks: 2,
        turn_blocks: 2,
        mutation: SessionMutation::None,
    };
    let mutations = [
        SessionMutation::BudgetBlind,
        SessionMutation::NoDiscountClear,
        SessionMutation::DonorLeak,
    ];
    for m in mutations {
        let sc = SessionScenario {
            mutation: m,
            budget_blocks: if m == SessionMutation::DonorLeak { 4 } else { 2 },
            ..base
        };
        match check_session(&sc) {
            Err(v) if !v.trace.is_empty() => {}
            Err(_) => {
                eprintln!("analyzer: mutation {m:?} violated without a trace");
                return ExitCode::FAILURE;
            }
            Ok(_) => {
                eprintln!(
                    "analyzer: mutation {m:?} passed the checker — the session \
                     properties are vacuous"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    if !quiet {
        println!(
            "analyzer: protocols ok — {cluster_count} cluster scenario(s), \
             {session_count} session scenario(s), {} mutation(s) caught, \
             {states} state(s) explored",
            mutations.len()
        );
    }
    ExitCode::SUCCESS
}
