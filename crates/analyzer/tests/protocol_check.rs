//! Exhaustive bounded check of the cluster ↔ worker protocol model:
//! every pipeline depth ≤3, job count ≤3, both message modes, and every
//! fault placement, over *all* interleavings. This is the repo's
//! machine-checked statement that the PR-2 supervision protocol cannot
//! deadlock, double-report, or leak completions past shutdown.

use analyzer::protocol::{all_scenarios, check, ErrKind, Fault, Mode, Mutation, Scenario};

#[test]
fn every_bounded_scenario_satisfies_the_protocol_properties() {
    let scenarios = all_scenarios(3, 3);
    assert!(scenarios.len() > 100, "scenario sweep lost coverage");
    let mut states_total = 0usize;
    for sc in &scenarios {
        let summary = check(sc).unwrap_or_else(|v| {
            panic!("scenario {sc:?} violates the protocol:\n{v}")
        });
        states_total += summary.states;
        // A drain can only time out when a stall holds endpoints open.
        if summary.drain_timeouts > 0 {
            assert!(
                matches!(sc.fault, Fault::Stall { .. }),
                "drain timeout without stall in {sc:?}"
            );
        }
        // Fault-free runs succeed on every interleaving; runs whose fault
        // actually fires (rank < world, job < jobs) never report Ok.
        let fires = match sc.fault {
            Fault::None => false,
            Fault::Panic { rank, job }
            | Fault::Drop { rank, job }
            | Fault::Stall { rank, job }
            | Fault::CorruptAck { rank, job } => rank < sc.world && job < sc.jobs,
        };
        if !fires {
            assert_eq!(
                summary.outcomes.iter().collect::<Vec<_>>(),
                vec![&None],
                "fault-free scenario {sc:?} has failing interleavings: {:?}",
                summary.outcomes
            );
        } else {
            assert!(
                !summary.outcomes.contains(&None),
                "fault fired in {sc:?} but some interleaving reported Ok"
            );
        }
    }
    // The sweep is genuinely exhaustive, not a handful of states.
    assert!(states_total > 5_000, "only {states_total} states explored");
}

#[test]
fn panic_outranks_the_secondary_disconnect_cascade() {
    // A mid-pipeline panic cascades disconnects in both directions; at
    // least one interleaving must still pin `Panicked` as the root
    // cause (the settled-root-cause severity ranking).
    for mode in [Mode::Async, Mode::Rendezvous] {
        let summary = check(&Scenario {
            world: 3,
            jobs: 2,
            mode,
            fault: Fault::Panic { rank: 1, job: 0 },
            mutation: Mutation::None,
        })
        .unwrap_or_else(|v| panic!("{v}"));
        assert!(
            summary.outcomes.contains(&Some(ErrKind::Panicked)),
            "{mode:?}: {:?}",
            summary.outcomes
        );
    }
}

#[test]
fn mutations_prove_the_checker_is_not_vacuous() {
    // Each deliberately re-introduced protocol bug must produce a
    // counterexample with a non-empty interleaving trace.
    let double = check(&Scenario {
        world: 2,
        jobs: 1,
        mode: Mode::Async,
        fault: Fault::None,
        mutation: Mutation::DoubleExit,
    })
    .expect_err("double exit reports must be caught");
    assert!(double.message.contains("WorkerExit"), "{double}");
    assert!(!double.trace.is_empty());

    let unbounded = check(&Scenario {
        world: 3,
        jobs: 2,
        mode: Mode::Async,
        fault: Fault::Stall { rank: 1, job: 0 },
        mutation: Mutation::UnboundedShutdown,
    })
    .expect_err("an unbounded shutdown drain must deadlock under a stall");
    assert!(unbounded.message.contains("deadlock"), "{unbounded}");

    let leak = check(&Scenario {
        world: 2,
        jobs: 3,
        mode: Mode::Async,
        fault: Fault::Drop { rank: 0, job: 0 },
        mutation: Mutation::LeakCompletions,
    })
    .expect_err("completions consumed after shutdown must be caught");
    assert!(leak.message.contains("after shutdown"), "{leak}");
}
