//! Exhaustive bounded check of the cluster ↔ worker protocol model:
//! every pipeline depth ≤3, job count ≤3, both message modes, and every
//! fault placement, over *all* interleavings. This is the repo's
//! machine-checked statement that the PR-2 supervision protocol cannot
//! deadlock, double-report, or leak completions past shutdown.

use analyzer::protocol::{all_scenarios, check, ErrKind, Fault, Mode, Mutation, Scenario};
use analyzer::session_protocol::{
    all_session_scenarios, check_session, SessionMutation, SessionScenario,
};

#[test]
fn every_bounded_scenario_satisfies_the_protocol_properties() {
    let scenarios = all_scenarios(3, 3);
    assert!(scenarios.len() > 100, "scenario sweep lost coverage");
    let mut states_total = 0usize;
    for sc in &scenarios {
        let summary = check(sc).unwrap_or_else(|v| {
            panic!("scenario {sc:?} violates the protocol:\n{v}")
        });
        states_total += summary.states;
        // A drain can only time out when a stall holds endpoints open.
        if summary.drain_timeouts > 0 {
            assert!(
                matches!(sc.fault, Fault::Stall { .. }),
                "drain timeout without stall in {sc:?}"
            );
        }
        // Fault-free runs succeed on every interleaving; runs whose fault
        // actually fires (rank < world, job < jobs) never report Ok.
        let fires = match sc.fault {
            Fault::None => false,
            Fault::Panic { rank, job }
            | Fault::Drop { rank, job }
            | Fault::Stall { rank, job }
            | Fault::CorruptAck { rank, job } => rank < sc.world && job < sc.jobs,
        };
        if !fires {
            assert_eq!(
                summary.outcomes.iter().collect::<Vec<_>>(),
                vec![&None],
                "fault-free scenario {sc:?} has failing interleavings: {:?}",
                summary.outcomes
            );
        } else {
            assert!(
                !summary.outcomes.contains(&None),
                "fault fired in {sc:?} but some interleaving reported Ok"
            );
        }
    }
    // The sweep is genuinely exhaustive, not a handful of states.
    assert!(states_total > 5_000, "only {states_total} states explored");
}

#[test]
fn panic_outranks_the_secondary_disconnect_cascade() {
    // A mid-pipeline panic cascades disconnects in both directions; at
    // least one interleaving must still pin `Panicked` as the root
    // cause (the settled-root-cause severity ranking).
    for mode in [Mode::Async, Mode::Rendezvous] {
        let summary = check(&Scenario {
            world: 3,
            jobs: 2,
            mode,
            fault: Fault::Panic { rank: 1, job: 0 },
            mutation: Mutation::None,
        })
        .unwrap_or_else(|v| panic!("{v}"));
        assert!(
            summary.outcomes.contains(&Some(ErrKind::Panicked)),
            "{mode:?}: {:?}",
            summary.outcomes
        );
    }
}

#[test]
fn mutations_prove_the_checker_is_not_vacuous() {
    // Each deliberately re-introduced protocol bug must produce a
    // counterexample with a non-empty interleaving trace.
    let double = check(&Scenario {
        world: 2,
        jobs: 1,
        mode: Mode::Async,
        fault: Fault::None,
        mutation: Mutation::DoubleExit,
    })
    .expect_err("double exit reports must be caught");
    assert!(double.message.contains("WorkerExit"), "{double}");
    assert!(!double.trace.is_empty());

    let unbounded = check(&Scenario {
        world: 3,
        jobs: 2,
        mode: Mode::Async,
        fault: Fault::Stall { rank: 1, job: 0 },
        mutation: Mutation::UnboundedShutdown,
    })
    .expect_err("an unbounded shutdown drain must deadlock under a stall");
    assert!(unbounded.message.contains("deadlock"), "{unbounded}");

    let leak = check(&Scenario {
        world: 2,
        jobs: 3,
        mode: Mode::Async,
        fault: Fault::Drop { rank: 0, job: 0 },
        mutation: Mutation::LeakCompletions,
    })
    .expect_err("completions consumed after shutdown must be caught");
    assert!(leak.message.contains("after shutdown"), "{leak}");
}

#[test]
fn every_bounded_session_scenario_satisfies_the_retention_properties() {
    // The session-KV retention protocol: ≤3 sessions × ≤2 turns under
    // three memory regimes and three retention budgets, all
    // interleavings of admit / finish / reclaim. No block leak, no
    // claim-after-drop, budget never exceeded, miss ⇒ full prefill.
    let scenarios = all_session_scenarios(3, 2);
    assert!(scenarios.len() >= 50, "scenario sweep lost coverage");
    let (mut states, mut hits, mut misses, mut drops, mut retains) = (0, 0, 0, 0, 0);
    for sc in &scenarios {
        let summary = check_session(sc).unwrap_or_else(|v| {
            panic!("scenario {sc:?} violates the session protocol:\n{v}")
        });
        states += summary.states;
        hits += summary.hits;
        misses += summary.misses;
        drops += summary.drops;
        retains += summary.retains;
    }
    // The sweep exercises every protocol path, not a vacuous corner:
    // reuse hits, reuse misses, pressure-driven drops, and retains must
    // all occur somewhere in the bounded space.
    assert!(states > 1_000, "only {states} states explored");
    assert!(hits > 0 && misses > 0 && drops > 0 && retains > 0,
        "vacuous sweep: hits {hits}, misses {misses}, drops {drops}, retains {retains}");
}

#[test]
fn session_mutations_prove_the_checker_is_not_vacuous() {
    // Each seeded retention bug must produce a counterexample with a
    // concrete interleaving trace.
    let base = SessionScenario {
        sessions: 2,
        turns: 2,
        total_blocks: 7,
        budget_blocks: 2,
        turn_blocks: 2,
        mutation: SessionMutation::None,
    };
    check_session(&base).expect("the faithful model passes");

    let blind = check_session(&SessionScenario {
        mutation: SessionMutation::BudgetBlind,
        ..base
    })
    .expect_err("ignoring the retention budget must be caught");
    assert!(blind.message.contains("budget"), "{blind}");
    assert!(!blind.trace.is_empty());

    let stale = check_session(&SessionScenario {
        mutation: SessionMutation::NoDiscountClear,
        ..base
    })
    .expect_err("a stale reuse discount after a drop must be caught");
    assert!(!stale.trace.is_empty());

    let leak = check_session(&SessionScenario {
        mutation: SessionMutation::DonorLeak,
        budget_blocks: 4,
        ..base
    })
    .expect_err("leaking the donor allocation on claim must be caught");
    assert!(leak.message.contains("leak"), "{leak}");
    assert!(!leak.trace.is_empty());
}
