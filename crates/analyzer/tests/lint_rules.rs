//! End-to-end fixtures for the lint pass: for every rule, a firing and a
//! non-firing example, plus the escape machinery (test scopes, gated
//! modules, justified/unjustified allows) and a full ratchet round-trip
//! through the committed-baseline JSON format.

use analyzer::{analyze_root, Baseline, Config};
use std::path::PathBuf;

/// A scratch directory under the system temp dir, removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let root = std::env::temp_dir().join(format!(
            "tdpipe-analyzer-fixture-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("src")).expect("create fixture dir");
        Fixture { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().expect("file path has a parent"))
            .expect("create parent dir");
        std::fs::write(path, content).expect("write fixture file");
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

const FIXTURE_CONFIG: &str = r#"
[set.determinism]
paths = ["src"]
rules = [
    "no-instant-now",
    "no-system-time",
    "no-hash-collections",
    "f64-sort-total-cmp",
]

[set.panic-safety]
paths = ["src/panics.rs"]
rules = ["no-unwrap", "no-expect", "no-panic", "no-todo", "no-unimplemented"]

[set.accounting]
paths = ["src/cast.rs"]
rules = ["lossy-float-cast"]
"#;

fn rules_fired(fix: &Fixture) -> Vec<(String, String, usize)> {
    let cfg = Config::parse(FIXTURE_CONFIG).expect("fixture config parses");
    let analysis = analyze_root(&fix.root, &cfg).expect("analysis runs");
    analysis
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.file.clone(), f.line))
        .collect()
}

#[test]
fn every_rule_has_a_firing_and_a_non_firing_fixture() {
    let fix = Fixture::new("rules");
    // Determinism rules: firing lines interleaved with innocent ones.
    fix.write(
        "src/det.rs",
        "use std::collections::HashMap;\n\
         use std::collections::BTreeMap;\n\
         fn a() -> Instant { Instant::now() }\n\
         fn a2(i: &Instant) -> f64 { i.elapsed().as_secs_f64() }\n\
         fn b() -> SystemTime { SystemTime::now() }\n\
         fn c(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n\
         fn d(v: &mut Vec<f64>) { v.sort_by(f64::total_cmp); }\n",
    );
    // Panic-safety rules; `src/panics.rs` is also under the determinism
    // set (whole `src`), which must not duplicate findings.
    fix.write(
        "src/panics.rs",
        "fn a(x: Option<u32>) -> u32 { x.unwrap() }\n\
         fn b(x: Option<u32>) -> u32 { x.expect(\"msg\") }\n\
         fn c() { panic!(\"boom\") }\n\
         fn d() { todo!() }\n\
         fn e() { unimplemented!() }\n\
         fn f(x: Option<u32>) -> u32 { x.unwrap_or_default() }\n",
    );
    // Accounting rule.
    fix.write(
        "src/cast.rs",
        "fn a(x: f64) -> u64 { (x * 0.5).ceil() as u64 }\n\
         fn b(x: u32) -> u64 { x as u64 }\n",
    );
    let fired = rules_fired(&fix);
    let expect = [
        ("no-hash-collections", "src/det.rs", 1),
        ("no-instant-now", "src/det.rs", 3),
        ("no-system-time", "src/det.rs", 5),
        ("f64-sort-total-cmp", "src/det.rs", 6),
        ("no-unwrap", "src/panics.rs", 1),
        ("no-expect", "src/panics.rs", 2),
        ("no-panic", "src/panics.rs", 3),
        ("no-todo", "src/panics.rs", 4),
        ("no-unimplemented", "src/panics.rs", 5),
        ("lossy-float-cast", "src/cast.rs", 1),
    ];
    for (rule, file, line) in expect {
        assert!(
            fired.contains(&(rule.to_string(), file.to_string(), line)),
            "{rule} should fire at {file}:{line}; got {fired:?}"
        );
    }
    // Exactly the expected findings — the innocent lines stay clean, and
    // overlapping sets do not double-report.
    assert_eq!(fired.len(), expect.len(), "unexpected extra findings: {fired:?}");
}

#[test]
fn strings_comments_and_test_scopes_do_not_fire() {
    let fix = Fixture::new("scopes");
    fix.write(
        "src/det.rs",
        "fn a() { let s = \"Instant::now() HashMap\"; }\n\
         // Instant::now() in a comment, HashMap too.\n\
         /* block comment: SystemTime */\n\
         #[cfg(test)]\n\
         mod tests {\n\
             fn t() { let x = Instant::now(); }\n\
             use std::collections::HashMap;\n\
         }\n",
    );
    // A whole file gated behind `#[cfg(test)] mod helper;` is test-only.
    fix.write("src/helper.rs", "fn t() { let x = Instant::now(); }\n");
    fix.write(
        "src/panics.rs",
        "#[cfg(test)]\nmod helper;\n\
         #[test]\n\
         fn t() { Option::<u32>::None.unwrap(); }\n",
    );
    fix.write("src/cast.rs", "fn ok() {}\n");
    let fired = rules_fired(&fix);
    assert!(fired.is_empty(), "nothing should fire: {fired:?}");
}

#[test]
fn allow_escapes_suppress_only_with_justification() {
    let fix = Fixture::new("allows");
    fix.write(
        "src/det.rs",
        "fn a() { let t = Instant::now(); } // analyzer: allow(no-instant-now) — fixture: sanctioned wall-clock read\n\
         // analyzer: allow(no-system-time) — standalone escape, wrapped\n\
         // justification continues here.\n\
         fn b() -> SystemTime { SystemTime::now() }\n\
         fn c() { let x = Instant::now(); } // analyzer: allow(no-instant-now)\n\
         fn d() { let y = Instant::now(); } // analyzer: allow(no-such-rule) — typo'd rule name\n",
    );
    fix.write("src/panics.rs", "fn ok() {}\n");
    fix.write("src/cast.rs", "fn ok() {}\n");
    let cfg = Config::parse(FIXTURE_CONFIG).expect("fixture config parses");
    let analysis = analyze_root(&fix.root, &cfg).expect("analysis runs");

    // Lines 1 and 4: suppressed, with the full (wrapped) justification.
    assert_eq!(analysis.suppressed.len(), 2, "{:?}", analysis.suppressed);
    assert!(analysis.suppressed.iter().any(|s| {
        s.finding.line == 4 && s.justification == "standalone escape, wrapped justification continues here."
    }), "{:?}", analysis.suppressed);

    // Line 5: allow without justification — the finding stands.
    assert!(analysis
        .findings
        .iter()
        .any(|f| f.rule == "no-instant-now" && f.line == 5 && f.message.contains("justification")),
        "{:?}", analysis.findings);
    // Line 6: unknown rule in the escape — invalid-allow, plus the
    // un-suppressed original finding.
    assert!(analysis
        .findings
        .iter()
        .any(|f| f.rule == "invalid-allow" && f.line == 6), "{:?}", analysis.findings);
    assert!(analysis
        .findings
        .iter()
        .any(|f| f.rule == "no-instant-now" && f.line == 6));
}

#[test]
fn ratchet_round_trip_through_committed_json() {
    let fix = Fixture::new("ratchet");
    fix.write(
        "src/det.rs",
        "fn a() { let t = Instant::now(); }\nuse std::collections::HashMap;\n",
    );
    fix.write("src/panics.rs", "fn ok() {}\n");
    fix.write("src/cast.rs", "fn ok() {}\n");
    let cfg = Config::parse(FIXTURE_CONFIG).expect("fixture config parses");
    let analysis = analyze_root(&fix.root, &cfg).expect("analysis runs");
    assert_eq!(analysis.findings.len(), 2);

    // Record the baseline, write it to disk, load it back: no new findings.
    let baseline_path = fix.root.join("analyzer.baseline.json");
    let recorded = Baseline::from_findings(&analysis.findings);
    std::fs::write(&baseline_path, recorded.to_json()).expect("write baseline");
    let loaded = Baseline::load(&baseline_path).expect("load baseline");
    assert_eq!(loaded, recorded);
    let diff = loaded.diff(&analysis.findings);
    assert!(diff.new.is_empty(), "{:?}", diff.new);
    assert!(diff.fixed.is_empty());

    // A new violation in the same file trips the ratchet...
    fix.write(
        "src/det.rs",
        "fn a() { let t = Instant::now(); }\nuse std::collections::HashMap;\n\
         fn b() { let u = Instant::now(); }\n",
    );
    let worse = analyze_root(&fix.root, &cfg).expect("analysis runs");
    let diff = loaded.diff(&worse.findings);
    assert_eq!(diff.new.len(), 2, "whole over-budget pair is reported: {:?}", diff.new);

    // ...while fixing one shows up as ratchet-down guidance, not failure.
    fix.write("src/det.rs", "use std::collections::HashMap;\n");
    let better = analyze_root(&fix.root, &cfg).expect("analysis runs");
    let diff = loaded.diff(&better.findings);
    assert!(diff.new.is_empty());
    assert_eq!(diff.fixed.len(), 1);

    // A missing baseline file is the empty baseline: everything is new.
    let missing = Baseline::load(&fix.root.join("nope.json")).expect("missing = empty");
    assert_eq!(missing.diff(&analysis.findings).new.len(), 2);
}
