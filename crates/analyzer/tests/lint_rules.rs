//! End-to-end fixtures for the lint pass: for every rule, a firing and a
//! non-firing example, plus the escape machinery (test scopes, gated
//! modules, justified/unjustified allows) and a full ratchet round-trip
//! through the committed-baseline JSON format.

use analyzer::{analyze_root, Baseline, Config};
use std::path::PathBuf;

/// A scratch directory under the system temp dir, removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let root = std::env::temp_dir().join(format!(
            "tdpipe-analyzer-fixture-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("src")).expect("create fixture dir");
        Fixture { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().expect("file path has a parent"))
            .expect("create parent dir");
        std::fs::write(path, content).expect("write fixture file");
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

const FIXTURE_CONFIG: &str = r#"
[set.determinism]
paths = ["src"]
rules = [
    "no-instant-now",
    "no-system-time",
    "no-hash-collections",
    "f64-sort-total-cmp",
]

[set.panic-safety]
paths = ["src/panics.rs"]
rules = ["no-unwrap", "no-expect", "no-panic", "no-todo", "no-unimplemented"]

[set.accounting]
paths = ["src/cast.rs"]
rules = ["lossy-float-cast"]
"#;

fn rules_fired(fix: &Fixture) -> Vec<(String, String, usize)> {
    let cfg = Config::parse(FIXTURE_CONFIG).expect("fixture config parses");
    let analysis = analyze_root(&fix.root, &cfg).expect("analysis runs");
    analysis
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.file.clone(), f.line))
        .collect()
}

#[test]
fn every_rule_has_a_firing_and_a_non_firing_fixture() {
    let fix = Fixture::new("rules");
    // Determinism rules: firing lines interleaved with innocent ones.
    fix.write(
        "src/det.rs",
        "use std::collections::HashMap;\n\
         use std::collections::BTreeMap;\n\
         fn a() -> Instant { Instant::now() }\n\
         fn a2(i: &Instant) -> f64 { i.elapsed().as_secs_f64() }\n\
         fn b() -> SystemTime { SystemTime::now() }\n\
         fn c(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n\
         fn d(v: &mut Vec<f64>) { v.sort_by(f64::total_cmp); }\n",
    );
    // Panic-safety rules; `src/panics.rs` is also under the determinism
    // set (whole `src`), which must not duplicate findings.
    fix.write(
        "src/panics.rs",
        "fn a(x: Option<u32>) -> u32 { x.unwrap() }\n\
         fn b(x: Option<u32>) -> u32 { x.expect(\"msg\") }\n\
         fn c() { panic!(\"boom\") }\n\
         fn d() { todo!() }\n\
         fn e() { unimplemented!() }\n\
         fn f(x: Option<u32>) -> u32 { x.unwrap_or_default() }\n",
    );
    // Accounting rule.
    fix.write(
        "src/cast.rs",
        "fn a(x: f64) -> u64 { (x * 0.5).ceil() as u64 }\n\
         fn b(x: u32) -> u64 { x as u64 }\n",
    );
    let fired = rules_fired(&fix);
    let expect = [
        ("no-hash-collections", "src/det.rs", 1),
        ("no-instant-now", "src/det.rs", 3),
        ("no-system-time", "src/det.rs", 5),
        ("f64-sort-total-cmp", "src/det.rs", 6),
        ("no-unwrap", "src/panics.rs", 1),
        ("no-expect", "src/panics.rs", 2),
        ("no-panic", "src/panics.rs", 3),
        ("no-todo", "src/panics.rs", 4),
        ("no-unimplemented", "src/panics.rs", 5),
        ("lossy-float-cast", "src/cast.rs", 1),
    ];
    for (rule, file, line) in expect {
        assert!(
            fired.contains(&(rule.to_string(), file.to_string(), line)),
            "{rule} should fire at {file}:{line}; got {fired:?}"
        );
    }
    // Exactly the expected findings — the innocent lines stay clean, and
    // overlapping sets do not double-report.
    assert_eq!(fired.len(), expect.len(), "unexpected extra findings: {fired:?}");
}

#[test]
fn strings_comments_and_test_scopes_do_not_fire() {
    let fix = Fixture::new("scopes");
    fix.write(
        "src/det.rs",
        "fn a() { let s = \"Instant::now() HashMap\"; }\n\
         // Instant::now() in a comment, HashMap too.\n\
         /* block comment: SystemTime */\n\
         #[cfg(test)]\n\
         mod tests {\n\
             fn t() { let x = Instant::now(); }\n\
             use std::collections::HashMap;\n\
         }\n",
    );
    // A whole file gated behind `#[cfg(test)] mod helper;` is test-only.
    fix.write("src/helper.rs", "fn t() { let x = Instant::now(); }\n");
    fix.write(
        "src/panics.rs",
        "#[cfg(test)]\nmod helper;\n\
         #[test]\n\
         fn t() { Option::<u32>::None.unwrap(); }\n",
    );
    fix.write("src/cast.rs", "fn ok() {}\n");
    let fired = rules_fired(&fix);
    assert!(fired.is_empty(), "nothing should fire: {fired:?}");
}

#[test]
fn allow_escapes_suppress_only_with_justification() {
    let fix = Fixture::new("allows");
    fix.write(
        "src/det.rs",
        "fn a() { let t = Instant::now(); } // analyzer: allow(no-instant-now) — fixture: sanctioned wall-clock read\n\
         // analyzer: allow(no-system-time) — standalone escape, wrapped\n\
         // justification continues here.\n\
         fn b() -> SystemTime { SystemTime::now() }\n\
         fn c() { let x = Instant::now(); } // analyzer: allow(no-instant-now)\n\
         fn d() { let y = Instant::now(); } // analyzer: allow(no-such-rule) — typo'd rule name\n",
    );
    fix.write("src/panics.rs", "fn ok() {}\n");
    fix.write("src/cast.rs", "fn ok() {}\n");
    let cfg = Config::parse(FIXTURE_CONFIG).expect("fixture config parses");
    let analysis = analyze_root(&fix.root, &cfg).expect("analysis runs");

    // Lines 1 and 4: suppressed, with the full (wrapped) justification.
    assert_eq!(analysis.suppressed.len(), 2, "{:?}", analysis.suppressed);
    assert!(analysis.suppressed.iter().any(|s| {
        s.finding.line == 4 && s.justification == "standalone escape, wrapped justification continues here."
    }), "{:?}", analysis.suppressed);

    // Line 5: allow without justification — the finding stands.
    assert!(analysis
        .findings
        .iter()
        .any(|f| f.rule == "no-instant-now" && f.line == 5 && f.message.contains("justification")),
        "{:?}", analysis.findings);
    // Line 6: unknown rule in the escape — invalid-allow, plus the
    // un-suppressed original finding.
    assert!(analysis
        .findings
        .iter()
        .any(|f| f.rule == "invalid-allow" && f.line == 6), "{:?}", analysis.findings);
    assert!(analysis
        .findings
        .iter()
        .any(|f| f.rule == "no-instant-now" && f.line == 6));
}

/// Single-rule fixture config over `sem/<rule-file>.rs`, with the
/// [units] / [observers] tables the semantic rules consume.
fn semantic_config(file: &str, rule: &str) -> String {
    format!(
        "[set.fixture]\npaths = [\"sem/{file}\"]\nrules = [\"{rule}\"]\n\n\
         [units]\nheld = \"tokens\"\n\n\
         [observers]\nnames = [\"occupancy\"]\n"
    )
}

/// Fired and suppressed line numbers for one rule under `cfg_text`.
fn lines_for(fix: &Fixture, cfg_text: &str, rule: &str) -> (Vec<usize>, Vec<usize>) {
    let cfg = Config::parse(cfg_text).expect("fixture config parses");
    let analysis = analyze_root(&fix.root, &cfg).expect("analysis runs");
    let fired = analysis
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect();
    let suppressed = analysis
        .suppressed
        .iter()
        .filter(|s| s.finding.rule == rule)
        .map(|s| s.finding.line)
        .collect();
    (fired, suppressed)
}

#[test]
fn unit_mismatch_catches_the_doctored_tokens_plus_blocks_bug() {
    // The full-repo scan is clean, so the dimension lint's value is
    // proven here instead: a deliberately doctored `tokens + blocks`
    // accounting bug, alongside same-unit / conversion / table-driven /
    // escaped / test-scoped neighbours.
    let fix = Fixture::new("units");
    fix.write(
        "sem/units.rs",
        "fn doctored(prompt_tokens: u64, retained_blocks: u64) -> u64 {\n\
             prompt_tokens + retained_blocks\n\
         }\n\
         fn fine(prompt_tokens: u64, decode_tokens: u64) -> u64 {\n\
             prompt_tokens + decode_tokens\n\
         }\n\
         fn conversion(used_blocks: u64, block_size: u64) -> u64 {\n\
             used_blocks * block_size\n\
         }\n\
         fn table(held: u64, free_blocks: u64) -> bool {\n\
             held < free_blocks\n\
         }\n\
         fn escaped(a_tokens: u64, b_blocks: u64) -> u64 {\n\
             a_tokens + b_blocks // analyzer: allow(unit-mismatch) — fixture: deliberate cross-unit sum\n\
         }\n\
         #[cfg(test)]\n\
         mod tests {\n\
             fn t(x_tokens: u64, y_blocks: u64) -> u64 { x_tokens + y_blocks }\n\
         }\n",
    );
    let (fired, suppressed) =
        lines_for(&fix, &semantic_config("units.rs", "unit-mismatch"), "unit-mismatch");
    // Line 2: the doctored bug. Line 11: `held` is tokens by the [units]
    // table, so comparing it to `free_blocks` is a mismatch.
    assert_eq!(fired, vec![2, 11], "{fired:?}");
    assert_eq!(suppressed, vec![14], "{suppressed:?}");
}

#[test]
fn float_int_cast_tracks_float_names() {
    let fix = Fixture::new("casts");
    fix.write(
        "sem/casts.rs",
        "fn bad() -> u64 {\n\
             let frac = 0.5;\n\
             frac as u64\n\
         }\n\
         fn good(n: u64) -> u64 {\n\
             n as u64\n\
         }\n\
         fn annotated(rate: f64) -> u32 {\n\
             rate as u32\n\
         }\n\
         fn escaped() -> u64 {\n\
             let f = 1.5;\n\
             f as u64 // analyzer: allow(float-int-cast) — fixture: floor semantics intended\n\
         }\n\
         #[cfg(test)]\n\
         mod tests {\n\
             fn t() -> u64 { let g = 2.5; g as u64 }\n\
         }\n",
    );
    let (fired, suppressed) =
        lines_for(&fix, &semantic_config("casts.rs", "float-int-cast"), "float-int-cast");
    assert_eq!(fired, vec![3, 9], "{fired:?}");
    assert_eq!(suppressed, vec![13], "{suppressed:?}");
}

#[test]
fn hash_order_iteration_tracks_collection_types() {
    let fix = Fixture::new("hash");
    fix.write(
        "sem/hash.rs",
        "fn bad() {\n\
             let mut seen: HashMap<u64, u64> = HashMap::new();\n\
             for k in seen.keys() {\n\
                 let _ = k;\n\
             }\n\
         }\n\
         fn good() {\n\
             let mut other: HashMap<u64, u64> = HashMap::new();\n\
             let _ = other.get(&3);\n\
             other.insert(1, 2);\n\
         }\n\
         fn sorted() {\n\
             let ordered: BTreeMap<u64, u64> = BTreeMap::new();\n\
             for k in ordered.keys() {\n\
                 let _ = k;\n\
             }\n\
         }\n\
         fn escaped() {\n\
             let pool: HashSet<u64> = HashSet::new();\n\
             // analyzer: allow(hash-order-iteration) — fixture: order-independent fold\n\
             for k in pool.iter() {\n\
                 let _ = k;\n\
             }\n\
         }\n\
         #[cfg(test)]\n\
         mod tests {\n\
             fn t() {\n\
                 let m: HashMap<u64, u64> = HashMap::new();\n\
                 for k in m.keys() { let _ = k; }\n\
             }\n\
         }\n",
    );
    let (fired, suppressed) = lines_for(
        &fix,
        &semantic_config("hash.rs", "hash-order-iteration"),
        "hash-order-iteration",
    );
    assert_eq!(fired, vec![3], "{fired:?}");
    assert_eq!(suppressed, vec![21], "{suppressed:?}");
}

#[test]
fn observer_purity_guards_gated_branches() {
    let fix = Fixture::new("obs");
    fix.write(
        "sem/obs.rs",
        "impl Eng {\n\
             fn pure(&mut self, used: u64) {\n\
                 if self.cfg.record_occupancy {\n\
                     self.occupancy = used;\n\
                 }\n\
             }\n\
             fn impure(&mut self, used: u64) {\n\
                 if self.cfg.record_occupancy {\n\
                     self.steps += used;\n\
                 }\n\
             }\n\
             fn off_path(&mut self) {\n\
                 if self.cfg.record_occupancy {\n\
                     let local = 1;\n\
                 } else {\n\
                     self.steps += 1;\n\
                 }\n\
             }\n\
             fn flips_gate(&mut self) {\n\
                 self.cfg.record_occupancy = false;\n\
             }\n\
             fn escaped(&mut self) {\n\
                 if self.cfg.record_occupancy {\n\
                     // analyzer: allow(observer-purity) — fixture: sample counter feeds the report only\n\
                     self.samples += 1;\n\
                 }\n\
             }\n\
         }\n\
         #[cfg(test)]\n\
         mod tests {\n\
             fn t(e: &mut Eng) {\n\
                 if e.cfg.record_occupancy {\n\
                     e.steps += 1;\n\
                 }\n\
             }\n\
         }\n",
    );
    let (fired, suppressed) =
        lines_for(&fix, &semantic_config("obs.rs", "observer-purity"), "observer-purity");
    // Line 4 assigns the allow-listed `occupancy` sink — clean. Line 9
    // mutates engine state when recording is on; line 16 mutates it when
    // recording is *off*; line 20 flips the gate after construction.
    assert_eq!(fired, vec![9, 16, 20], "{fired:?}");
    assert_eq!(suppressed, vec![25], "{suppressed:?}");
}

#[test]
fn lexer_round_trips_the_analyzer_sources() {
    // The analyzer's own sources are the richest Rust corpus guaranteed
    // present: raw strings, em-dash comments, nested generics, floats.
    let src_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut checked = 0usize;
    for entry in std::fs::read_dir(&src_dir).expect("read src dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().map(|e| e == "rs").unwrap_or(false) {
            let text = std::fs::read_to_string(&path).expect("read source");
            let toks = analyzer::lexer::lex(&text);
            assert_eq!(
                analyzer::lexer::round_trip(&text, &toks).as_deref(),
                Some(text.as_str()),
                "{} did not round-trip losslessly",
                path.display()
            );
            checked += 1;
        }
    }
    assert!(checked >= 8, "only {checked} sources round-tripped");
}

#[test]
fn ratchet_round_trip_through_committed_json() {
    let fix = Fixture::new("ratchet");
    fix.write(
        "src/det.rs",
        "fn a() { let t = Instant::now(); }\nuse std::collections::HashMap;\n",
    );
    fix.write("src/panics.rs", "fn ok() {}\n");
    fix.write("src/cast.rs", "fn ok() {}\n");
    let cfg = Config::parse(FIXTURE_CONFIG).expect("fixture config parses");
    let analysis = analyze_root(&fix.root, &cfg).expect("analysis runs");
    assert_eq!(analysis.findings.len(), 2);

    // Record the baseline, write it to disk, load it back: no new findings.
    let baseline_path = fix.root.join("analyzer.baseline.json");
    let recorded = Baseline::from_findings(&analysis.findings);
    std::fs::write(&baseline_path, recorded.to_json()).expect("write baseline");
    let loaded = Baseline::load(&baseline_path).expect("load baseline");
    assert_eq!(loaded, recorded);
    let diff = loaded.diff(&analysis.findings);
    assert!(diff.new.is_empty(), "{:?}", diff.new);
    assert!(diff.fixed.is_empty());

    // A new violation in the same file trips the ratchet...
    fix.write(
        "src/det.rs",
        "fn a() { let t = Instant::now(); }\nuse std::collections::HashMap;\n\
         fn b() { let u = Instant::now(); }\n",
    );
    let worse = analyze_root(&fix.root, &cfg).expect("analysis runs");
    let diff = loaded.diff(&worse.findings);
    assert_eq!(diff.new.len(), 2, "whole over-budget pair is reported: {:?}", diff.new);

    // ...while fixing one shows up as ratchet-down guidance, not failure.
    fix.write("src/det.rs", "use std::collections::HashMap;\n");
    let better = analyze_root(&fix.root, &cfg).expect("analysis runs");
    let diff = loaded.diff(&better.findings);
    assert!(diff.new.is_empty());
    assert_eq!(diff.fixed.len(), 1);

    // A missing baseline file is the empty baseline: everything is new.
    let missing = Baseline::load(&fix.root.join("nope.json")).expect("missing = empty");
    assert_eq!(missing.diff(&analysis.findings).new.len(), 2);
}
