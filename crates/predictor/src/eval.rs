//! Predictor evaluation: single-request accuracy (§4.4.1) and the
//! accumulated group error of Figure 14.

use crate::predictor::{LengthPredictor, OutputLenPredictor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tdpipe_workload::Trace;

/// Single-request bucket classification accuracy on a test trace — the
/// 0.5214 / 0.5805 / 0.5234 numbers of §4.4.1.
pub fn accuracy(predictor: &LengthPredictor, test: &Trace) -> f64 {
    assert!(!test.is_empty(), "empty test trace");
    let correct = test
        .requests()
        .iter()
        .filter(|r| predictor.predict_bucket(r) == predictor.true_bucket(r))
        .count();
    correct as f64 / test.len() as f64
}

/// Result of one accumulated-error evaluation group size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccumulatedErrorPoint {
    /// Requests per group.
    pub group_size: usize,
    /// Mean over groups of `|Σ predicted − Σ actual| / Σ actual`.
    pub mean_relative_error: f64,
}

/// The accumulated prediction error of Figure 14: partition a shuffled test
/// set into groups of `group_size`, predict each request, and average the
/// relative error of the *summed* lengths per group.
///
/// Individual over- and under-estimates cancel inside a group, so the error
/// shrinks as groups grow — the property that makes Algorithm 1's total-KV
/// simulation trustworthy despite ~50% single-request accuracy.
pub fn accumulated_error<P: OutputLenPredictor>(
    predictor: &P,
    test: &Trace,
    group_size: usize,
    seed: u64,
) -> AccumulatedErrorPoint {
    assert!(group_size >= 1, "group size must be positive");
    assert!(
        test.len() >= group_size,
        "test trace smaller than one group"
    );
    let mut order: Vec<usize> = (0..test.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);

    let reqs = test.requests();
    let mut errors = Vec::new();
    for group in order.chunks_exact(group_size) {
        let mut pred_sum = 0.0;
        let mut actual_sum = 0.0;
        for &i in group {
            pred_sum += predictor.predict(&reqs[i]) as f64;
            actual_sum += reqs[i].output_len as f64;
        }
        errors.push((pred_sum - actual_sum).abs() / actual_sum);
    }
    AccumulatedErrorPoint {
        group_size,
        mean_relative_error: errors.iter().sum::<f64>() / errors.len() as f64,
    }
}

/// Bucket-level confusion matrix (rows = true bucket, columns = predicted).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<u64>>,
    total: u64,
}

impl ConfusionMatrix {
    /// Tabulate a predictor over a test trace.
    pub fn compute(predictor: &LengthPredictor, test: &Trace) -> Self {
        let k = predictor.buckets().num_buckets();
        let mut counts = vec![vec![0u64; k]; k];
        for r in test.requests() {
            counts[predictor.true_bucket(r)][predictor.predict_bucket(r)] += 1;
        }
        ConfusionMatrix {
            counts,
            total: test.len() as u64,
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.counts.len()
    }

    /// Overall accuracy (trace of the matrix over the total).
    pub fn accuracy(&self) -> f64 {
        let diag: u64 = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        diag as f64 / self.total.max(1) as f64
    }

    /// Recall of one true bucket (diag / row sum); 0 for empty buckets.
    pub fn recall(&self, bucket: usize) -> f64 {
        let row: u64 = self.counts[bucket].iter().sum();
        if row == 0 {
            0.0
        } else {
            self.counts[bucket][bucket] as f64 / row as f64
        }
    }

    /// Precision of one predicted bucket (diag / column sum); 0 if never
    /// predicted.
    pub fn precision(&self, bucket: usize) -> f64 {
        let col: u64 = self.counts.iter().map(|r| r[bucket]).sum();
        if col == 0 {
            0.0
        } else {
            self.counts[bucket][bucket] as f64 / col as f64
        }
    }

    /// Raw counts (rows = true, columns = predicted).
    pub fn counts(&self) -> &[Vec<u64>] {
        &self.counts
    }

    /// Export per-bucket hit/miss counters for the metrics plane: a hit
    /// is a diagonal entry (predicted bucket == true bucket), a miss is
    /// the rest of that true bucket's row.
    pub fn to_metrics(&self) -> tdpipe_metrics::MetricsSnapshot {
        let mut reg = tdpipe_metrics::Registry::new();
        for b in 0..self.num_buckets() {
            let bucket = b.to_string();
            let row: u64 = self.counts[b].iter().sum();
            let hit = self.counts[b][b];
            let c = reg.counter(
                "predictor_bucket_hit_total",
                "Correct bucket predictions by true bucket",
                &[("bucket", &bucket)],
            );
            reg.add(c, hit);
            let c = reg.counter(
                "predictor_bucket_miss_total",
                "Wrong bucket predictions by true bucket",
                &[("bucket", &bucket)],
            );
            reg.add(c, row - hit);
        }
        reg.snapshot()
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "true\\pred {}", (0..self.num_buckets()).map(|i| format!("{i:>7}")).collect::<String>())?;
        for (i, row) in self.counts.iter().enumerate() {
            write!(f, "{i:>9} ")?;
            for &c in row {
                write!(f, "{c:>7}")?;
            }
            writeln!(f, "   recall {:.2}", self.recall(i))?;
        }
        Ok(())
    }
}

/// Sweep the Figure 14 group sizes (1, 2, 4, …, `max_group`).
pub fn accumulated_error_sweep<P: OutputLenPredictor>(
    predictor: &P,
    test: &Trace,
    max_group: usize,
    seed: u64,
) -> Vec<AccumulatedErrorPoint> {
    let mut out = Vec::new();
    let mut g = 1;
    while g <= max_group && g <= test.len() {
        out.push(accumulated_error(predictor, test, g, seed));
        g *= 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::TrainConfig;
    use crate::predictor::OraclePredictor;
    use tdpipe_workload::ShareGptLikeConfig;

    fn fitted() -> (LengthPredictor, Trace) {
        let trace = ShareGptLikeConfig::small(12_000, 23).generate();
        let splits = trace.split(23);
        let cfg = TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        };
        (LengthPredictor::train(&splits.train, &cfg), splits.test)
    }

    #[test]
    fn oracle_has_zero_accumulated_error() {
        let trace = ShareGptLikeConfig::small(1_000, 2).generate();
        let e = accumulated_error(&OraclePredictor, &trace, 64, 0);
        assert_eq!(e.mean_relative_error, 0.0);
    }

    #[test]
    fn accumulated_error_shrinks_with_group_size() {
        let (p, test) = fitted();
        let sweep = accumulated_error_sweep(&p, &test, 256, 7);
        let first = sweep.first().unwrap().mean_relative_error;
        let last = sweep.last().unwrap().mean_relative_error;
        assert!(
            last < first / 2.0,
            "error should shrink: {first:.4} -> {last:.4}"
        );
        // Paper reports 2.8–6.2% at 256 requests; allow a loose band.
        assert!(last < 0.15, "256-group error too large: {last:.4}");
    }

    #[test]
    fn accuracy_is_a_probability() {
        let (p, test) = fitted();
        let a = accuracy(&p, &test);
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn confusion_matrix_is_consistent_with_accuracy() {
        let (p, test) = fitted();
        let m = ConfusionMatrix::compute(&p, &test);
        let a = accuracy(&p, &test);
        assert!((m.accuracy() - a).abs() < 1e-12);
        // Counts sum to the trace size.
        let total: u64 = m.counts().iter().flatten().sum();
        assert_eq!(total as usize, test.len());
        // Recalls and precisions are probabilities.
        for b in 0..m.num_buckets() {
            assert!((0.0..=1.0).contains(&m.recall(b)));
            assert!((0.0..=1.0).contains(&m.precision(b)));
        }
        // Display renders.
        assert!(m.to_string().contains("recall"));
    }

    #[test]
    fn to_metrics_counters_tally_the_matrix() {
        let (p, test) = fitted();
        let m = ConfusionMatrix::compute(&p, &test);
        let snap = m.to_metrics();
        let count = |name: &str, b: usize| {
            match snap
                .get_labeled(name, &[("bucket", &b.to_string())])
                .unwrap_or_else(|| panic!("{name} bucket {b}"))
                .value
            {
                tdpipe_metrics::MetricValue::Counter(c) => c,
                _ => panic!("bucket counters are counters"),
            }
        };
        let mut hits = 0u64;
        let mut total = 0u64;
        for b in 0..m.num_buckets() {
            let (h, miss) = (
                count("predictor_bucket_hit_total", b),
                count("predictor_bucket_miss_total", b),
            );
            assert_eq!(h, m.counts()[b][b]);
            hits += h;
            total += h + miss;
        }
        // Summed counters reproduce accuracy and the trace size.
        assert_eq!(total as usize, test.len());
        assert!((hits as f64 / total as f64 - m.accuracy()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn zero_group_panics() {
        let trace = ShareGptLikeConfig::small(10, 1).generate();
        accumulated_error(&OraclePredictor, &trace, 0, 0);
    }
}
