//! The predictor facade the scheduler consumes.

use crate::buckets::PercentileBuckets;
use crate::classifier::{SoftmaxClassifier, TrainConfig};
use crate::naive_bayes::GaussianNbClassifier;
use serde::{Deserialize, Serialize};
use tdpipe_workload::{Request, Trace};

/// Anything that can estimate a request's output length before it runs.
pub trait OutputLenPredictor {
    /// Estimated output length in tokens.
    fn predict(&self, request: &Request) -> u32;

    /// Wall-clock cost of producing one prediction, in seconds. Used to
    /// charge the predictor's (negligible) overhead in end-to-end runs,
    /// mirroring the paper's §4.4.1 measurement (~0.28 ms/request on L20).
    fn per_request_overhead(&self) -> f64 {
        0.0
    }
}

/// An oracle that returns the ground-truth output length — the upper bound
/// for ablating how much predictor error costs the scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct OraclePredictor;

impl OutputLenPredictor for OraclePredictor {
    fn predict(&self, request: &Request) -> u32 {
        request.output_len
    }
}

/// The trained µ-Serve-style predictor: softmax classifier over prompt
/// features + percentile-bucket means.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LengthPredictor {
    buckets: PercentileBuckets,
    classifier: SoftmaxClassifier,
    /// Seconds charged per prediction (paper: 1 418.861 ms / 5 000 requests
    /// on the L20 node ⇒ ≈ 0.284 ms).
    pub per_request_overhead_s: f64,
}

/// Per-prediction overhead measured by the paper on the L20 node.
pub const L20_PREDICTOR_OVERHEAD_S: f64 = 1.418861 / 5_000.0;
/// Per-prediction overhead measured by the paper on the A100 node.
pub const A100_PREDICTOR_OVERHEAD_S: f64 = 0.833695 / 5_000.0;

impl LengthPredictor {
    /// Fit buckets and classifier on a training trace (the 60% split).
    ///
    /// The feature vector presented to the classifier is the request's
    /// prompt embedding plus its (normalised) prompt length — both
    /// observable before any token is generated.
    pub fn train(train: &Trace, cfg: &TrainConfig) -> Self {
        let lengths: Vec<u32> = train.requests().iter().map(|r| r.output_len).collect();
        let buckets = PercentileBuckets::fit(&lengths);
        let features: Vec<Vec<f32>> = train.requests().iter().map(Self::featurise).collect();
        let labels: Vec<usize> = train
            .requests()
            .iter()
            .map(|r| buckets.bucket_of(r.output_len))
            .collect();
        let classifier =
            SoftmaxClassifier::train(&features, &labels, buckets.num_buckets(), cfg);
        LengthPredictor {
            buckets,
            classifier,
            per_request_overhead_s: L20_PREDICTOR_OVERHEAD_S,
        }
    }

    /// Feature map: prompt embedding ⊕ normalised prompt length.
    pub fn featurise(r: &Request) -> Vec<f32> {
        let mut f = r.features.clone();
        f.push(r.input_len as f32 / 1024.0);
        f
    }

    /// The bucket the classifier assigns to a request (argmax — the
    /// quantity §4.4.1's single-request accuracy scores).
    pub fn predict_bucket(&self, request: &Request) -> usize {
        self.classifier.predict(&Self::featurise(request))
    }

    /// Expected output length under the classifier's calibrated class
    /// probabilities: `Σ_k p_k · bucket_mean_k`.
    ///
    /// The paper assigns each request its argmax bucket's mean. Argmax
    /// systematically forfeits the rare long-output bucket (1% mass, huge
    /// mean), biasing *summed* predictions low — which is what Algorithm 1
    /// actually consumes. Weighting by the calibrated probabilities keeps
    /// the same classifier and the same bucket means but removes that bias,
    /// reproducing Fig. 14's vanishing accumulated error.
    pub fn predict_expected(&self, request: &Request) -> f64 {
        let probs = self.classifier.predict_proba(&Self::featurise(request));
        probs
            .iter()
            .enumerate()
            .map(|(k, p)| p * self.buckets.predicted_len(k) as f64)
            .sum()
    }

    /// The bucket the ground-truth output length falls into (evaluation).
    pub fn true_bucket(&self, request: &Request) -> usize {
        self.buckets.bucket_of(request.output_len)
    }

    /// Fitted buckets.
    pub fn buckets(&self) -> &PercentileBuckets {
        &self.buckets
    }

    /// Serialise the trained predictor (deploy artefact).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("predictor serialises")
    }

    /// Load a predictor serialised by [`Self::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// A µ-Serve-style predictor whose classifier head is Gaussian Naive
/// Bayes instead of logistic regression — the cheap-training ablation
/// point of the `ablation_predictor` bench.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NbLengthPredictor {
    buckets: PercentileBuckets,
    classifier: GaussianNbClassifier,
    /// Seconds charged per prediction.
    pub per_request_overhead_s: f64,
}

impl NbLengthPredictor {
    /// Fit buckets and the NB classifier in one pass over the training
    /// trace.
    pub fn train(train: &Trace) -> Self {
        let lengths: Vec<u32> = train.requests().iter().map(|r| r.output_len).collect();
        let buckets = PercentileBuckets::fit(&lengths);
        let features: Vec<Vec<f32>> =
            train.requests().iter().map(LengthPredictor::featurise).collect();
        let labels: Vec<usize> = train
            .requests()
            .iter()
            .map(|r| buckets.bucket_of(r.output_len))
            .collect();
        let classifier = GaussianNbClassifier::train(&features, &labels, buckets.num_buckets());
        NbLengthPredictor {
            buckets,
            classifier,
            per_request_overhead_s: L20_PREDICTOR_OVERHEAD_S,
        }
    }

    /// Argmax bucket (for accuracy evaluation).
    pub fn predict_bucket(&self, request: &Request) -> usize {
        self.classifier.predict(&LengthPredictor::featurise(request))
    }

    /// The ground-truth bucket of a request.
    pub fn true_bucket(&self, request: &Request) -> usize {
        self.buckets.bucket_of(request.output_len)
    }
}

impl OutputLenPredictor for NbLengthPredictor {
    fn predict(&self, request: &Request) -> u32 {
        let probs = self
            .classifier
            .predict_proba(&LengthPredictor::featurise(request));
        let expected: f64 = probs
            .iter()
            .enumerate()
            .map(|(k, p)| p * self.buckets.predicted_len(k) as f64)
            .sum();
        expected.round().max(1.0) as u32
    }

    fn per_request_overhead(&self) -> f64 {
        self.per_request_overhead_s
    }
}

/// Predicts the training-set mean output length for every request: the
/// "no per-request signal" floor of the predictor ablation. Its summed
/// predictions are unbiased (so Algorithm 1's totals are right on
/// average), but it cannot tell long requests from short ones.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanPredictor {
    /// Mean historical output length, rounded up.
    pub mean_len: u32,
}

impl MeanPredictor {
    /// Fit on historical outputs.
    pub fn train(train: &Trace) -> Self {
        let n = train.len().max(1) as u64;
        MeanPredictor {
            mean_len: (train.total_output_tokens().div_ceil(n)).max(1) as u32,
        }
    }
}

impl OutputLenPredictor for MeanPredictor {
    fn predict(&self, _request: &Request) -> u32 {
        self.mean_len
    }
}

impl OutputLenPredictor for LengthPredictor {
    fn predict(&self, request: &Request) -> u32 {
        self.predict_expected(request).round().max(1.0) as u32
    }

    fn per_request_overhead(&self) -> f64 {
        self.per_request_overhead_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdpipe_workload::ShareGptLikeConfig;

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn trained_predictor_beats_chance_on_held_out_data() {
        let trace = ShareGptLikeConfig::small(12_000, 17).generate();
        let splits = trace.split(17);
        let p = LengthPredictor::train(&splits.train, &quick_cfg());
        let correct = splits
            .test
            .requests()
            .iter()
            .filter(|r| p.predict_bucket(r) == p.true_bucket(r))
            .count();
        let acc = correct as f64 / splits.test.len() as f64;
        // Majority class of the 25/25/25/15/9/1 bucket masses is 0.25;
        // the paper reports 0.52–0.58 for the real predictor. Accept a
        // generous band — the bench reports the exact figure.
        assert!(acc > 0.35, "accuracy {acc} not better than chance");
        assert!(acc < 0.95, "accuracy {acc} suspiciously high");
    }

    #[test]
    fn predictions_are_valid_lengths() {
        let trace = ShareGptLikeConfig::small(4_000, 5).generate();
        let splits = trace.split(5);
        let p = LengthPredictor::train(&splits.train, &quick_cfg());
        for r in splits.test.requests().iter().take(200) {
            let len = p.predict(r);
            assert!((1..=4096).contains(&len), "len={len}");
        }
    }

    #[test]
    fn oracle_is_exact() {
        let trace = ShareGptLikeConfig::small(100, 3).generate();
        for r in trace.requests() {
            assert_eq!(OraclePredictor.predict(r), r.output_len);
        }
        assert_eq!(OraclePredictor.per_request_overhead(), 0.0);
    }

    #[test]
    fn trained_predictor_round_trips_through_json() {
        let trace = ShareGptLikeConfig::small(2_000, 3).generate();
        let p = LengthPredictor::train(&trace.split(3).train, &quick_cfg());
        let json = p.to_json();
        let q = LengthPredictor::from_json(&json).unwrap();
        // JSON float text loses the last ULP; behavioural equality is what
        // a deploy artefact needs.
        assert_eq!(p.buckets(), q.buckets());
        for r in trace.requests().iter().take(50) {
            assert_eq!(p.predict(r), q.predict(r));
            assert_eq!(p.predict_bucket(r), q.predict_bucket(r));
        }
        assert!(LengthPredictor::from_json("{}").is_err());
    }

    #[test]
    fn mean_predictor_is_unbiased_on_training_data() {
        let trace = ShareGptLikeConfig::small(4_000, 9).generate();
        let m = MeanPredictor::train(&trace);
        let pred_sum: u64 = trace.requests().iter().map(|r| m.predict(r) as u64).sum();
        let actual = trace.total_output_tokens();
        let rel = (pred_sum as f64 - actual as f64).abs() / actual as f64;
        assert!(rel < 0.01, "mean predictor bias {rel}");
    }

    #[test]
    fn nb_predictor_beats_chance() {
        let trace = ShareGptLikeConfig::small(10_000, 21).generate();
        let splits = trace.split(21);
        let nb = NbLengthPredictor::train(&splits.train);
        let correct = splits
            .test
            .requests()
            .iter()
            .filter(|r| nb.predict_bucket(r) == nb.true_bucket(r))
            .count();
        let acc = correct as f64 / splits.test.len() as f64;
        assert!(acc > 0.35, "NB accuracy {acc}");
    }

    #[test]
    fn paper_overhead_constants() {
        assert!((L20_PREDICTOR_OVERHEAD_S - 2.837722e-4).abs() < 1e-9);
        assert!((A100_PREDICTOR_OVERHEAD_S - 1.66739e-4).abs() < 1e-9);
    }
}
