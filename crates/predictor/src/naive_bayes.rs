//! Gaussian Naive Bayes — a second, cheaper bucket classifier.
//!
//! Useful as an ablation point between the softmax classifier and
//! no-signal baselines: NB trains in one pass, needs no hyper-parameters,
//! and is usually a few accuracy points worse — quantifying how much
//! classifier quality the greedy prefill actually needs.

use serde::{Deserialize, Serialize};

/// A Gaussian Naive Bayes classifier over dense feature vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianNbClassifier {
    num_classes: usize,
    dim: usize,
    /// `log P(class)`.
    log_prior: Vec<f64>,
    /// Per-class per-feature mean, row-major `[num_classes × dim]`.
    mean: Vec<f64>,
    /// Per-class per-feature variance (floored), row-major.
    var: Vec<f64>,
}

impl GaussianNbClassifier {
    /// Fit priors and per-class Gaussians in a single pass.
    ///
    /// # Panics
    /// Panics on empty data, ragged features, or out-of-range labels.
    pub fn train(features: &[Vec<f32>], labels: &[usize], num_classes: usize) -> Self {
        assert!(!features.is_empty(), "empty training set");
        assert_eq!(features.len(), labels.len(), "features/labels mismatch");
        let dim = features[0].len();
        assert!(features.iter().all(|f| f.len() == dim), "ragged features");
        assert!(labels.iter().all(|&l| l < num_classes), "label out of range");

        let mut count = vec![0u64; num_classes];
        let mut mean = vec![0.0f64; num_classes * dim];
        for (f, &l) in features.iter().zip(labels) {
            count[l] += 1;
            for (d, &v) in f.iter().enumerate() {
                mean[l * dim + d] += v as f64;
            }
        }
        for k in 0..num_classes {
            let n = count[k].max(1) as f64;
            for d in 0..dim {
                mean[k * dim + d] /= n;
            }
        }
        let mut var = vec![0.0f64; num_classes * dim];
        for (f, &l) in features.iter().zip(labels) {
            for (d, &v) in f.iter().enumerate() {
                let c = v as f64 - mean[l * dim + d];
                var[l * dim + d] += c * c;
            }
        }
        let total = features.len() as f64;
        let mut log_prior = vec![0.0f64; num_classes];
        for k in 0..num_classes {
            let n = count[k].max(1) as f64;
            for d in 0..dim {
                var[k * dim + d] = (var[k * dim + d] / n).max(1e-6);
            }
            // Laplace-smoothed prior keeps empty classes finite.
            log_prior[k] = ((count[k] as f64 + 1.0) / (total + num_classes as f64)).ln();
        }
        GaussianNbClassifier {
            num_classes,
            dim,
            log_prior,
            mean,
            var,
        }
    }

    fn log_posteriors(&self, features: &[f32]) -> Vec<f64> {
        assert_eq!(features.len(), self.dim, "feature dimension mismatch");
        let mut out = Vec::with_capacity(self.num_classes);
        for k in 0..self.num_classes {
            let mut lp = self.log_prior[k];
            for (d, &v) in features.iter().enumerate() {
                let m = self.mean[k * self.dim + d];
                let s2 = self.var[k * self.dim + d];
                let c = v as f64 - m;
                lp += -0.5 * (c * c / s2 + s2.ln() + std::f64::consts::TAU.ln());
            }
            out.push(lp);
        }
        out
    }

    /// Most likely class.
    pub fn predict(&self, features: &[f32]) -> usize {
        self.log_posteriors(features)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("at least one class")
            .0
    }

    /// Normalised class posteriors.
    pub fn predict_proba(&self, features: &[f32]) -> Vec<f64> {
        let lp = self.log_posteriors(features);
        let maxv = lp.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut probs: Vec<f64> = lp.iter().map(|&v| (v - maxv).exp()).collect();
        let sum: f64 = probs.iter().sum();
        for p in probs.iter_mut() {
            *p /= sum;
        }
        probs
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_blobs_classify_cleanly() {
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for i in 0..400 {
            let l = i % 2;
            let c = if l == 0 { -3.0f32 } else { 3.0 };
            // Small deterministic jitter.
            let j = ((i * 37) % 100) as f32 / 100.0 - 0.5;
            feats.push(vec![c + j, -c - j]);
            labels.push(l);
        }
        let nb = GaussianNbClassifier::train(&feats, &labels, 2);
        let correct = feats
            .iter()
            .zip(&labels)
            .filter(|(f, &l)| nb.predict(f) == l)
            .count();
        assert!(correct as f64 / 400.0 > 0.99);
        // Posteriors are a distribution.
        let p = nb.predict_proba(&feats[0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unseen_class_keeps_finite_prior() {
        // Train with only label 0 present out of 3 classes.
        let feats = vec![vec![0.0f32], vec![1.0]];
        let nb = GaussianNbClassifier::train(&feats, &[0, 0], 3);
        let p = nb.predict_proba(&[0.5]);
        assert_eq!(p.len(), 3);
        assert!(p.iter().all(|&x| x.is_finite()));
        assert_eq!(nb.predict(&[0.5]), 0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_labels_panic() {
        GaussianNbClassifier::train(&[vec![0.0]], &[7], 2);
    }
}
