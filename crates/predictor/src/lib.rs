//! Output-length prediction for the AI-based greedy prefill (paper §3.3).
//!
//! The paper follows µ-Serve: a BERT-based multi-class classifier maps each
//! prompt to a *percentile bucket* of the historical output-length
//! distribution — `[P0,P25), [P25,P50), [P50,P75), [P75,P90), [P90,P99),
//! [P99,+)` — and the predicted length is the training-set mean of the
//! winning bucket. BERT itself is a gated dependency; its role here is
//! played by a from-scratch **multinomial logistic regression** over the
//! prompt feature vectors the workload generator attaches to every request
//! (the `[CLS]`-embedding stand-in). The workload's feature noise is
//! calibrated so test accuracy lands near the paper's 0.52–0.58.
//!
//! What the scheduler actually consumes:
//!
//! * [`LengthPredictor::predict`] — a length estimate per request,
//! * [`eval::accuracy`] — single-request bucket accuracy (§4.4.1),
//! * [`eval::accumulated_error`] — the group-wise relative error of the
//!   *summed* predictions (paper Fig. 14), the quantity that actually
//!   bounds Algorithm 1's memory-usage simulation error.

#![forbid(unsafe_code)]

pub mod buckets;
pub mod classifier;
pub mod eval;
pub mod naive_bayes;
pub mod predictor;

pub use buckets::PercentileBuckets;
pub use classifier::SoftmaxClassifier;
pub use naive_bayes::GaussianNbClassifier;
pub use predictor::{LengthPredictor, MeanPredictor, NbLengthPredictor, OraclePredictor, OutputLenPredictor};
