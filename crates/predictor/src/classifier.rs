//! From-scratch multinomial logistic regression (softmax classifier).
//!
//! Plays the role of the paper's BERT + two-layer-FFN classifier head: it
//! maps a prompt feature vector to one of the output-length buckets. SGD
//! with mini-batches, inverse-time learning-rate decay, seeded shuffling —
//! fully deterministic for a given seed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: u32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f64,
    /// L2 regularisation strength.
    pub l2: f64,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 8,
            batch_size: 64,
            lr: 0.5,
            l2: 1e-5,
            seed: 0xC1A5,
        }
    }
}

/// A linear softmax classifier `argmax_k (W_k · x + b_k)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftmaxClassifier {
    num_classes: usize,
    dim: usize,
    /// Row-major `[num_classes × dim]` weights.
    weights: Vec<f64>,
    bias: Vec<f64>,
    /// Per-feature standardisation: `x' = (x - mean) / std`.
    feat_mean: Vec<f64>,
    feat_std: Vec<f64>,
}

impl SoftmaxClassifier {
    /// Train on `(features, label)` pairs. All feature vectors must share
    /// one dimension; labels must be `< num_classes`.
    ///
    /// # Panics
    /// Panics on empty data, inconsistent dimensions, or out-of-range
    /// labels.
    pub fn train(
        features: &[Vec<f32>],
        labels: &[usize],
        num_classes: usize,
        cfg: &TrainConfig,
    ) -> Self {
        assert!(!features.is_empty(), "empty training set");
        assert_eq!(features.len(), labels.len(), "features/labels mismatch");
        let dim = features[0].len();
        assert!(features.iter().all(|f| f.len() == dim), "ragged features");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );

        // Standardise features (mean 0, std 1) for stable SGD.
        let n = features.len() as f64;
        let mut feat_mean = vec![0.0; dim];
        let mut feat_std = vec![0.0; dim];
        for f in features {
            for (d, &v) in f.iter().enumerate() {
                feat_mean[d] += v as f64;
            }
        }
        for m in feat_mean.iter_mut() {
            *m /= n;
        }
        for f in features {
            for (d, &v) in f.iter().enumerate() {
                let c = v as f64 - feat_mean[d];
                feat_std[d] += c * c;
            }
        }
        for s in feat_std.iter_mut() {
            *s = (*s / n).sqrt().max(1e-6);
        }

        let mut this = SoftmaxClassifier {
            num_classes,
            dim,
            weights: vec![0.0; num_classes * dim],
            bias: vec![0.0; num_classes],
            feat_mean,
            feat_std,
        };

        let mut order: Vec<usize> = (0..features.len()).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut grad_w = vec![0.0; num_classes * dim];
        let mut grad_b = vec![0.0; num_classes];
        let mut x = vec![0.0; dim];
        let mut probs = vec![0.0; num_classes];
        let mut step = 0u64;

        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size) {
                grad_w.iter_mut().for_each(|g| *g = 0.0);
                grad_b.iter_mut().for_each(|g| *g = 0.0);
                for &i in chunk {
                    this.standardise(&features[i], &mut x);
                    this.softmax(&x, &mut probs);
                    for k in 0..num_classes {
                        let err = probs[k] - f64::from(labels[i] == k);
                        grad_b[k] += err;
                        let row = &mut grad_w[k * dim..(k + 1) * dim];
                        for (d, &xv) in x.iter().enumerate() {
                            row[d] += err * xv;
                        }
                    }
                }
                step += 1;
                let lr = cfg.lr / (1.0 + 1e-4 * step as f64) / chunk.len() as f64;
                for (w, g) in this.weights.iter_mut().zip(&grad_w) {
                    *w -= lr * (g + cfg.l2 * *w * chunk.len() as f64);
                }
                for (b, g) in this.bias.iter_mut().zip(&grad_b) {
                    *b -= lr * g;
                }
            }
        }
        this
    }

    fn standardise(&self, f: &[f32], out: &mut [f64]) {
        for d in 0..self.dim {
            out[d] = (f[d] as f64 - self.feat_mean[d]) / self.feat_std[d];
        }
    }

    fn softmax(&self, x: &[f64], out: &mut [f64]) {
        let mut maxv = f64::NEG_INFINITY;
        for (k, o) in out.iter_mut().enumerate().take(self.num_classes) {
            let row = &self.weights[k * self.dim..(k + 1) * self.dim];
            let mut z = self.bias[k];
            for (d, &xv) in x.iter().enumerate() {
                z += row[d] * xv;
            }
            *o = z;
            maxv = maxv.max(z);
        }
        let mut sum = 0.0;
        for v in out.iter_mut() {
            *v = (*v - maxv).exp();
            sum += *v;
        }
        for v in out.iter_mut() {
            *v /= sum;
        }
    }

    /// Class probabilities for one feature vector (calibrated softmax).
    ///
    /// # Panics
    /// Panics if the feature dimension differs from training.
    pub fn predict_proba(&self, features: &[f32]) -> Vec<f64> {
        assert_eq!(features.len(), self.dim, "feature dimension mismatch");
        let mut x = vec![0.0; self.dim];
        self.standardise(features, &mut x);
        let mut probs = vec![0.0; self.num_classes];
        self.softmax(&x, &mut probs);
        probs
    }

    /// Predict the class of one feature vector.
    ///
    /// # Panics
    /// Panics if the feature dimension differs from training.
    pub fn predict(&self, features: &[f32]) -> usize {
        assert_eq!(features.len(), self.dim, "feature dimension mismatch");
        let mut x = vec![0.0; self.dim];
        self.standardise(features, &mut x);
        let mut best = 0;
        let mut best_z = f64::NEG_INFINITY;
        for k in 0..self.num_classes {
            let row = &self.weights[k * self.dim..(k + 1) * self.dim];
            let mut z = self.bias[k];
            for (d, &xv) in x.iter().enumerate() {
                z += row[d] * xv;
            }
            if z > best_z {
                best_z = z;
                best = k;
            }
        }
        best
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Two well-separated Gaussian blobs must be almost perfectly learnable.
    #[test]
    fn separable_blobs_reach_high_accuracy() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for i in 0..2000 {
            let label = i % 2;
            let centre = if label == 0 { -2.0f32 } else { 2.0 };
            feats.push(vec![
                centre + rng.random::<f32>() - 0.5,
                -centre + rng.random::<f32>() - 0.5,
            ]);
            labels.push(label);
        }
        let clf = SoftmaxClassifier::train(&feats, &labels, 2, &TrainConfig::default());
        let correct = feats
            .iter()
            .zip(&labels)
            .filter(|(f, &l)| clf.predict(f) == l)
            .count();
        assert!(correct as f64 / feats.len() as f64 > 0.98);
    }

    #[test]
    fn noisy_labels_cap_accuracy() {
        // Pure label noise: no classifier can beat the majority class.
        let mut rng = StdRng::seed_from_u64(2);
        let feats: Vec<Vec<f32>> = (0..1000)
            .map(|_| vec![rng.random::<f32>(), rng.random::<f32>()])
            .collect();
        let labels: Vec<usize> = (0..1000).map(|_| rng.random_range(0..4)).collect();
        let clf = SoftmaxClassifier::train(&feats, &labels, 4, &TrainConfig::default());
        let correct = feats
            .iter()
            .zip(&labels)
            .filter(|(f, &l)| clf.predict(f) == l)
            .count();
        assert!((correct as f64 / 1000.0) < 0.40);
    }

    #[test]
    fn deterministic_training() {
        let feats: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32, (i % 7) as f32]).collect();
        let labels: Vec<usize> = (0..100).map(|i| i % 3).collect();
        let a = SoftmaxClassifier::train(&feats, &labels, 3, &TrainConfig::default());
        let b = SoftmaxClassifier::train(&feats, &labels, 3, &TrainConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_labels_panic() {
        SoftmaxClassifier::train(&[vec![0.0]], &[5], 2, &TrainConfig::default());
    }

    #[test]
    #[should_panic(expected = "feature dimension")]
    fn bad_dim_panics() {
        let clf = SoftmaxClassifier::train(&[vec![0.0], vec![1.0]], &[0, 1], 2, &TrainConfig::default());
        clf.predict(&[0.0, 1.0]);
    }
}
