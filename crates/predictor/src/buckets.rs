//! Percentile buckets over historical output lengths (µ-Serve style).

use serde::{Deserialize, Serialize};
use tdpipe_workload::stats::percentile;

/// The percentile boundaries the paper quotes: `[P0,P25) … [P99,+)`.
const BOUNDARY_PERCENTILES: [f64; 5] = [25.0, 50.0, 75.0, 90.0, 99.0];

/// Number of buckets.
pub const NUM_BUCKETS: usize = BOUNDARY_PERCENTILES.len() + 1;

/// Output-length buckets derived from historical inference data.
///
/// `bounds[i]` is the lower edge of bucket `i + 1`; bucket `i` covers
/// `[bounds[i-1], bounds[i])`. `means[i]` is the average historical length
/// inside bucket `i` — the value [`crate::LengthPredictor`] returns when the
/// classifier picks bucket `i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PercentileBuckets {
    bounds: [f64; BOUNDARY_PERCENTILES.len()],
    means: [f64; NUM_BUCKETS],
}

impl PercentileBuckets {
    /// Fit boundaries and bucket means from historical output lengths.
    ///
    /// # Panics
    /// Panics on an empty history.
    pub fn fit(historical_lengths: &[u32]) -> Self {
        assert!(!historical_lengths.is_empty(), "need historical data");
        let as_f64: Vec<f64> = historical_lengths.iter().map(|&l| l as f64).collect();
        let mut bounds = [0.0; BOUNDARY_PERCENTILES.len()];
        for (i, &p) in BOUNDARY_PERCENTILES.iter().enumerate() {
            bounds[i] = percentile(&as_f64, p);
        }

        let mut sums = [0.0f64; NUM_BUCKETS];
        let mut counts = [0u64; NUM_BUCKETS];
        let mut this = PercentileBuckets {
            bounds,
            means: [0.0; NUM_BUCKETS],
        };
        for &l in historical_lengths {
            let b = this.bucket_of(l);
            sums[b] += l as f64;
            counts[b] += 1;
        }
        for i in 0..NUM_BUCKETS {
            this.means[i] = if counts[i] > 0 {
                sums[i] / counts[i] as f64
            } else {
                // Degenerate distributions can leave a bucket empty; fall
                // back to its lower boundary.
                if i == 0 {
                    0.0
                } else {
                    this.bounds[i - 1]
                }
            };
        }
        this
    }

    /// Bucket index of a length.
    pub fn bucket_of(&self, len: u32) -> usize {
        let l = len as f64;
        self.bounds.iter().position(|&b| l < b).unwrap_or(NUM_BUCKETS - 1)
    }

    /// Predicted length when the classifier picks `bucket` (the bucket's
    /// training-set mean, rounded up so capacity simulations err safe).
    ///
    /// # Panics
    /// Panics if `bucket >= NUM_BUCKETS`.
    pub fn predicted_len(&self, bucket: usize) -> u32 {
        self.means[bucket].ceil() as u32
    }

    /// Number of buckets (always [`NUM_BUCKETS`]).
    pub const fn num_buckets(&self) -> usize {
        NUM_BUCKETS
    }

    /// The fitted boundaries (P25, P50, P75, P90, P99).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_line_in_order() {
        let hist: Vec<u32> = (1..=1000).collect();
        let b = PercentileBuckets::fit(&hist);
        assert_eq!(b.bucket_of(0), 0);
        assert_eq!(b.bucket_of(1), 0);
        // Monotone bucket index in length.
        let mut prev = 0;
        for l in (0..=1100).step_by(10) {
            let cur = b.bucket_of(l);
            assert!(cur >= prev);
            prev = cur;
        }
        assert_eq!(b.bucket_of(100_000), NUM_BUCKETS - 1);
    }

    #[test]
    fn quartile_masses_are_correct() {
        let hist: Vec<u32> = (1..=10_000).collect();
        let b = PercentileBuckets::fit(&hist);
        let mut counts = [0usize; NUM_BUCKETS];
        for &l in &hist {
            counts[b.bucket_of(l)] += 1;
        }
        let n = hist.len() as f64;
        let frac: Vec<f64> = counts.iter().map(|&c| c as f64 / n).collect();
        for (i, expect) in [0.25, 0.25, 0.25, 0.15, 0.09, 0.01].iter().enumerate() {
            assert!(
                (frac[i] - expect).abs() < 0.01,
                "bucket {i}: got {} want {expect}",
                frac[i]
            );
        }
    }

    #[test]
    fn bucket_means_sit_inside_their_bucket() {
        let hist: Vec<u32> = (1..=5000).map(|i| i % 700 + 1).collect();
        let b = PercentileBuckets::fit(&hist);
        let bounds = b.bounds();
        for i in 0..NUM_BUCKETS {
            let m = b.means[i];
            if i > 0 {
                assert!(m >= bounds[i - 1], "bucket {i} mean {m} below lower bound");
            }
            if i < bounds.len() {
                assert!(m <= bounds[i], "bucket {i} mean {m} above upper bound");
            }
        }
    }

    #[test]
    fn constant_history_degenerates_gracefully() {
        let b = PercentileBuckets::fit(&[100; 50]);
        // Everything lands in the last bucket (all bounds == 100, and
        // 100 < 100 is false), whose mean is 100.
        assert_eq!(b.bucket_of(100), NUM_BUCKETS - 1);
        assert_eq!(b.predicted_len(NUM_BUCKETS - 1), 100);
    }

    #[test]
    #[should_panic(expected = "historical")]
    fn empty_history_panics() {
        PercentileBuckets::fit(&[]);
    }
}
