//! Report assembly, byte-stable JSON exports, schema validators, the
//! Chrome nested-span export, and the metrics bridge.
//!
//! The two on-disk artifacts are versioned JSON documents:
//!
//! * **span report** — per-replica [`RequestSpan`] lists plus fleet
//!   component totals; [`validate_span_report`] re-derives every span
//!   identity and the totals fold and rejects any bit of drift.
//! * **bubble report** — per-replica [`BubbleLedger`]s and critical
//!   paths plus fleet per-cause totals; [`validate_bubble_report`]
//!   refolds every device's idle total from the gap list.
//!
//! Both serialize through the vendored `serde_json`, whose `f64`
//! formatting is Rust's shortest round-trip `Display` — so exactness
//! survives the disk: a validator reading the file back recomputes the
//! identities on *bit-identical* floats.

use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use tdpipe_metrics::{MetricEntry, MetricValue, MetricsSnapshot};
use tdpipe_trace::FlightRecorder;

use crate::bubble::{attribute_bubbles, BubbleLedger};
use crate::critical::{critical_path, CriticalPath};
use crate::span::{build_spans, fold_seconds, RequestSpan, SpanComponents};

/// Schema version stamped into both reports.
pub const REPORT_VERSION: u32 = 1;

/// One journal's full analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaAnalysis {
    /// Replica label (`"engine"` for a single-engine run).
    pub label: String,
    /// Run length: the latest instant the journal knows about.
    pub makespan: f64,
    /// Requests whose lifecycle was incomplete in the journal (skipped).
    pub incomplete: usize,
    /// Reconstructed spans, ascending request id.
    pub spans: Vec<RequestSpan>,
    /// Attributed idle ledger.
    pub ledger: BubbleLedger,
    /// Ranked makespan decomposition of the output stage.
    pub critical: CriticalPath,
}

/// The fleet-level analysis: every replica plus cross-replica folds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Analysis {
    /// Per-replica analyses, in input order.
    pub replicas: Vec<ReplicaAnalysis>,
    /// Per component name: left fold of that component over every span,
    /// replicas in order, spans in order.
    pub component_totals: BTreeMap<String, f64>,
    /// Per cause label: left fold over every replica's gap list in order.
    pub fleet_by_cause: BTreeMap<String, f64>,
}

/// The latest instant a journal knows about: engine events and stage
/// segment/gap ends.
fn journal_end(journal: &FlightRecorder) -> f64 {
    let mut end = 0.0f64;
    if let Some(e) = journal.events().last() {
        end = end.max(e.t);
    }
    for e in journal.stage_events() {
        let fin = match e.event {
            tdpipe_trace::TraceEvent::StageBusy { dur, .. } => e.t + dur,
            tdpipe_trace::TraceEvent::StageIdle { dur, .. } => e.t + dur,
            _ => e.t,
        };
        end = end.max(fin);
    }
    end
}

/// Analyze one or more labelled journals (one per replica).
pub fn analyze(journals: &[(String, &FlightRecorder)]) -> Analysis {
    let mut replicas = Vec::with_capacity(journals.len());
    for (label, journal) in journals {
        let (spans, incomplete) = build_spans(journal);
        let ledger = attribute_bubbles(journal);
        let makespan = journal_end(journal);
        let critical = critical_path(&ledger, makespan);
        replicas.push(ReplicaAnalysis {
            label: label.clone(),
            makespan,
            incomplete,
            spans,
            ledger,
            critical,
        });
    }

    let mut component_totals: BTreeMap<String, f64> = SpanComponents::NAMES
        .iter()
        .map(|n| (n.to_string(), 0.0))
        .collect();
    for r in &replicas {
        for s in &r.spans {
            for (name, v) in SpanComponents::NAMES.iter().zip(s.components.as_array()) {
                *component_totals.get_mut(*name).expect("known component") += v;
            }
        }
    }

    let mut fleet_by_cause: BTreeMap<String, f64> = BTreeMap::new();
    for r in &replicas {
        for g in &r.ledger.gaps {
            *fleet_by_cause
                .entry(g.cause.label().to_string())
                .or_insert(0.0) += g.dur;
        }
    }

    Analysis {
        replicas,
        component_totals,
        fleet_by_cause,
    }
}

// ---------------------------------------------------------------------------
// Span report
// ---------------------------------------------------------------------------

/// On-disk span report (the `span-report` subcommand's `--out`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanReport {
    /// Schema version ([`REPORT_VERSION`]).
    pub version: u32,
    /// Per-replica spans.
    pub replicas: Vec<SpanReportReplica>,
    /// Fleet component totals (see [`Analysis::component_totals`]).
    pub component_totals: BTreeMap<String, f64>,
}

/// One replica's slice of a [`SpanReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanReportReplica {
    pub label: String,
    pub incomplete: usize,
    pub spans: Vec<RequestSpan>,
}

/// Serialize the span report. Byte-stable: struct field order plus
/// `BTreeMap` key order, shortest-round-trip floats.
pub fn span_report_json(analysis: &Analysis) -> String {
    let report = SpanReport {
        version: REPORT_VERSION,
        replicas: analysis
            .replicas
            .iter()
            .map(|r| SpanReportReplica {
                label: r.label.clone(),
                incomplete: r.incomplete,
                spans: r.spans.clone(),
            })
            .collect(),
        component_totals: analysis.component_totals.clone(),
    };
    serde_json::to_string(&report).unwrap_or_else(|_| String::from("{}"))
}

/// What [`validate_span_report`] measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SpanReportCheck {
    pub replicas: usize,
    pub spans: usize,
    pub incomplete: usize,
}

/// Schema- and identity-check a span report document.
///
/// Rejects: unparseable JSON, wrong version, any span whose three fold
/// identities fail **exactly**, non-finite fields, and component totals
/// that do not refold bit-identically from the span lists.
pub fn validate_span_report(json: &str) -> Result<SpanReportCheck, String> {
    let report: SpanReport =
        serde_json::from_str(json).map_err(|e| format!("invalid span report JSON: {e}"))?;
    if report.version != REPORT_VERSION {
        return Err(format!(
            "span report version {} (expected {REPORT_VERSION})",
            report.version
        ));
    }
    let mut totals: BTreeMap<String, f64> = SpanComponents::NAMES
        .iter()
        .map(|n| (n.to_string(), 0.0))
        .collect();
    let mut spans = 0usize;
    let mut incomplete = 0usize;
    for r in &report.replicas {
        incomplete += r.incomplete;
        for s in &r.spans {
            spans += 1;
            let parts = s.components.as_array();
            if parts.iter().any(|v| !v.is_finite())
                || !s.ttft.is_finite()
                || !s.latency.is_finite()
            {
                return Err(format!(
                    "replica {:?} request {}: non-finite span field",
                    r.label, s.request
                ));
            }
            if !s.identities_hold() {
                return Err(format!(
                    "replica {:?} request {}: span components do not sum exactly \
                     (ttft {}, decode_total {}, latency {})",
                    r.label, s.request, s.ttft, s.decode_total, s.latency
                ));
            }
            for (name, v) in SpanComponents::NAMES.iter().zip(parts) {
                *totals.get_mut(*name).expect("known component") += v;
            }
        }
    }
    if totals != report.component_totals {
        return Err("component_totals do not refold from the span lists".into());
    }
    Ok(SpanReportCheck {
        replicas: report.replicas.len(),
        spans,
        incomplete,
    })
}

// ---------------------------------------------------------------------------
// Bubble report
// ---------------------------------------------------------------------------

/// On-disk bubble report (the `bubble-report` subcommand's `--out`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BubbleReport {
    /// Schema version ([`REPORT_VERSION`]).
    pub version: u32,
    /// Per-replica ledgers + critical paths.
    pub replicas: Vec<BubbleReportReplica>,
    /// Fleet per-cause totals (see [`Analysis::fleet_by_cause`]).
    pub fleet_by_cause: BTreeMap<String, f64>,
}

/// One replica's slice of a [`BubbleReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BubbleReportReplica {
    pub label: String,
    pub makespan: f64,
    pub ledger: BubbleLedger,
    pub critical: CriticalPath,
}

/// Serialize the bubble report (byte-stable, like [`span_report_json`]).
pub fn bubble_report_json(analysis: &Analysis) -> String {
    let report = BubbleReport {
        version: REPORT_VERSION,
        replicas: analysis
            .replicas
            .iter()
            .map(|r| BubbleReportReplica {
                label: r.label.clone(),
                makespan: r.makespan,
                ledger: r.ledger.clone(),
                critical: r.critical.clone(),
            })
            .collect(),
        fleet_by_cause: analysis.fleet_by_cause.clone(),
    };
    serde_json::to_string(&report).unwrap_or_else(|_| String::from("{}"))
}

/// What [`validate_bubble_report`] measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BubbleReportCheck {
    pub replicas: usize,
    pub devices: usize,
    pub gaps: usize,
}

/// Schema- and identity-check a bubble report document.
///
/// Rejects: unparseable JSON, wrong version, any device whose
/// `idle_total` or `by_cause` buckets do not refold **bit-identically**
/// from its gap list, and fleet totals that do not refold from the
/// replicas' gap lists.
pub fn validate_bubble_report(json: &str) -> Result<BubbleReportCheck, String> {
    let report: BubbleReport =
        serde_json::from_str(json).map_err(|e| format!("invalid bubble report JSON: {e}"))?;
    if report.version != REPORT_VERSION {
        return Err(format!(
            "bubble report version {} (expected {REPORT_VERSION})",
            report.version
        ));
    }
    let mut devices = 0usize;
    let mut gaps = 0usize;
    let mut fleet: BTreeMap<String, f64> = BTreeMap::new();
    for r in &report.replicas {
        gaps += r.ledger.gaps.len();
        for g in &r.ledger.gaps {
            if !g.dur.is_finite() || g.dur < 0.0 {
                return Err(format!(
                    "replica {:?}: gap at {} has invalid dur {}",
                    r.label, g.start, g.dur
                ));
            }
            *fleet.entry(g.cause.label().to_string()).or_insert(0.0) += g.dur;
        }
        for d in &r.ledger.devices {
            devices += 1;
            let refolded = r.ledger.refold_idle(d.device);
            if refolded.to_bits() != d.idle_total.to_bits() {
                return Err(format!(
                    "replica {:?} device {}: idle_total {} does not refold from \
                     its gaps (got {})",
                    r.label, d.device, d.idle_total, refolded
                ));
            }
            let mut again: BTreeMap<String, f64> = BTreeMap::new();
            for g in r.ledger.gaps.iter().filter(|g| g.device == d.device) {
                *again.entry(g.cause.label().to_string()).or_insert(0.0) += g.dur;
            }
            if again != d.by_cause {
                return Err(format!(
                    "replica {:?} device {}: by_cause buckets do not refold",
                    r.label, d.device
                ));
            }
        }
    }
    if fleet != report.fleet_by_cause {
        return Err("fleet_by_cause does not refold from the replicas' gaps".into());
    }
    Ok(BubbleReportCheck {
        replicas: report.replicas.len(),
        devices,
        gaps,
    })
}

// ---------------------------------------------------------------------------
// Chrome nested-span export
// ---------------------------------------------------------------------------

const SECS_TO_US: f64 = 1e6;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Track id for one request's span lane. Replicas are spaced a million
/// tids apart so merged fleet traces keep per-track (tid-keyed)
/// timestamp monotonicity in [`tdpipe_trace::validate_chrome_trace`].
fn span_tid(replica_idx: usize, request: u64) -> u64 {
    replica_idx as u64 * 1_000_000 + request + 1
}

/// Export the analysis as a Chrome trace with one track per request:
/// the seven span components laid end-to-end from the request's arrival
/// (durations clamped at 0 for display — the closure components can be
/// a few ulps negative). Passes [`tdpipe_trace::validate_chrome_trace`].
pub fn span_chrome_trace(analysis: &Analysis) -> String {
    let mut events: Vec<Value> = Vec::new();
    for (ri, r) in analysis.replicas.iter().enumerate() {
        for s in &r.spans {
            let tid = span_tid(ri, s.request);
            events.push(obj(vec![
                ("name", Value::Str("thread_name".into())),
                ("ph", Value::Str("M".into())),
                ("pid", Value::UInt(0)),
                ("tid", Value::UInt(tid)),
                (
                    "args",
                    obj(vec![(
                        "name",
                        Value::Str(format!("{} req {}", r.label, s.request)),
                    )]),
                ),
            ]));
            let mut cursor = s.arrival;
            for (name, v) in SpanComponents::NAMES.iter().zip(s.components.as_array()) {
                let dur = v.max(0.0);
                if dur > 0.0 {
                    events.push(obj(vec![
                        ("name", Value::Str((*name).into())),
                        ("ph", Value::Str("X".into())),
                        ("pid", Value::UInt(0)),
                        ("tid", Value::UInt(tid)),
                        ("ts", Value::Float(cursor * SECS_TO_US)),
                        ("dur", Value::Float(dur * SECS_TO_US)),
                        (
                            "args",
                            obj(vec![("request", Value::UInt(s.request))]),
                        ),
                    ]));
                }
                cursor += dur;
            }
        }
    }
    let doc = obj(vec![
        ("traceEvents", Value::Seq(events)),
        ("displayTimeUnit", Value::Str("ms".into())),
    ]);
    serde_json::to_string(&doc).unwrap_or_else(|_| String::from("{}"))
}

// ---------------------------------------------------------------------------
// Metrics bridge
// ---------------------------------------------------------------------------

fn gauge(name: &str, help: &str, labels: &[(&str, &str)], v: f64) -> MetricEntry {
    MetricEntry {
        name: name.to_string(),
        help: help.to_string(),
        labels: labels
            .iter()
            .map(|(k, val)| (k.to_string(), val.to_string()))
            .collect(),
        value: MetricValue::Gauge(v),
    }
}

/// Export the analysis as registry-shaped metrics: per-component span
/// seconds, per-cause bubble seconds, the unlabelled `bubble_seconds`
/// total `metrics-diff` gates on, and the span count.
pub fn span_metrics(analysis: &Analysis) -> MetricsSnapshot {
    let mut metrics = Vec::new();
    let bubble_total = {
        let vals: Vec<f64> = analysis.fleet_by_cause.values().copied().collect();
        fold_seconds(&vals)
    };
    metrics.push(gauge(
        "bubble_seconds",
        "total attributed pipeline-bubble (stage idle) seconds",
        &[],
        bubble_total,
    ));
    for (cause, &secs) in &analysis.fleet_by_cause {
        metrics.push(gauge(
            "bubble_seconds_total",
            "attributed pipeline-bubble seconds by cause",
            &[("cause", cause)],
            secs,
        ));
    }
    let n_spans: usize = analysis.replicas.iter().map(|r| r.spans.len()).sum();
    metrics.push(MetricEntry {
        name: "span_requests".to_string(),
        help: "requests with a complete reconstructed span".to_string(),
        labels: BTreeMap::new(),
        value: MetricValue::Counter(n_spans as u64),
    });
    for (component, &secs) in &analysis.component_totals {
        metrics.push(gauge(
            "span_seconds_total",
            "per-request span seconds by lifecycle component",
            &[("component", component)],
            secs,
        ));
    }
    metrics.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    MetricsSnapshot {
        metrics,
        series: Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// Text renderings
// ---------------------------------------------------------------------------

/// Human-readable span summary: fleet component totals and shares, then
/// a per-replica line.
pub fn span_table(analysis: &Analysis) -> String {
    let n_spans: usize = analysis.replicas.iter().map(|r| r.spans.len()).sum();
    let incomplete: usize = analysis.replicas.iter().map(|r| r.incomplete).sum();
    let mut out = format!(
        "span report — {n_spans} request(s) across {} replica(s), {incomplete} incomplete\n",
        analysis.replicas.len()
    );
    let latency_total = analysis
        .component_totals
        .values()
        .fold(0.0f64, |a, &x| a + x);
    out.push_str(&format!(
        "{:<16} {:>12} {:>12} {:>8}\n",
        "component", "total s", "mean s", "share"
    ));
    for name in SpanComponents::NAMES {
        let total = analysis.component_totals.get(name).copied().unwrap_or(0.0);
        let mean = if n_spans > 0 {
            total / n_spans as f64
        } else {
            0.0
        };
        let share = if latency_total > 0.0 {
            total / latency_total
        } else {
            0.0
        };
        out.push_str(&format!(
            "{name:<16} {total:>12.4} {mean:>12.4} {share:>7.1}%\n",
            share = share * 100.0
        ));
    }
    for r in &analysis.replicas {
        let ttft: f64 = r.spans.iter().map(|s| s.ttft).sum();
        let lat: f64 = r.spans.iter().map(|s| s.latency).sum();
        let n = r.spans.len().max(1) as f64;
        out.push_str(&format!(
            "replica {:<12} {:>5} span(s)  mean ttft {:>9.4} s  mean latency {:>9.4} s\n",
            r.label,
            r.spans.len(),
            ttft / n,
            lat / n
        ));
    }
    out
}

/// Human-readable bubble summary: fleet per-cause totals, then per
/// replica the critical path's top contributors.
pub fn bubble_table(analysis: &Analysis) -> String {
    let total_idle: f64 = analysis.fleet_by_cause.values().sum();
    let mut out = format!(
        "bubble ledger — {:.4} idle second(s) across {} replica(s)\n",
        total_idle,
        analysis.replicas.len()
    );
    out.push_str(&format!("{:<20} {:>12} {:>8}\n", "cause", "seconds", "share"));
    // Descending seconds, names as tie-break — the reading order.
    let mut rows: Vec<(&String, f64)> = analysis
        .fleet_by_cause
        .iter()
        .map(|(k, &v)| (k, v))
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    for (cause, secs) in rows {
        let share = if total_idle > 0.0 { secs / total_idle } else { 0.0 };
        out.push_str(&format!(
            "{cause:<20} {secs:>12.4} {share:>7.1}%\n",
            share = share * 100.0
        ));
    }
    for r in &analysis.replicas {
        out.push_str(&format!(
            "replica {:<12} makespan {:>10.4} s  critical device {}:",
            r.label, r.makespan, r.critical.device
        ));
        for c in r.critical.contributors.iter().take(3) {
            out.push_str(&format!(" {} {:.1}%", c.name, c.share * 100.0));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdpipe_kvcache::Phase;
    use tdpipe_sim::{SegmentKind, Timeline};
    use tdpipe_trace::{AdmitReason, PrefillStopReason, TraceEvent};

    fn journal() -> FlightRecorder {
        let mut tl = Timeline::new(true);
        tl.record(0, 1.0, 2.0, SegmentKind::Prefill, 1);
        tl.record(0, 2.5, 6.0, SegmentKind::Decode, 2);
        tl.record(1, 1.25, 2.25, SegmentKind::Prefill, 1);
        tl.record(1, 2.75, 6.5, SegmentKind::Decode, 2);
        let mut r = FlightRecorder::with_capacity(16);
        r.record(
            1.0,
            TraceEvent::PrefillLaunch {
                seq: 1,
                batch: 1,
                tokens: 128,
                ready: 1.0,
            },
        );
        r.record(
            1.0,
            TraceEvent::PrefillAdmit {
                request: 0,
                tokens: 128,
                reason: AdmitReason::FirstPrefill,
            },
        );
        r.record(
            1.0,
            TraceEvent::PrefillStop {
                reason: PrefillStopReason::Exhausted,
                admitted: 1,
            },
        );
        r.record(2.25, TraceEvent::PrefillDone { request: 0 });
        r.record(
            2.4,
            TraceEvent::PhaseSwitch {
                from: Phase::Prefill,
                to: Phase::Decode,
            },
        );
        r.record(
            6.5,
            TraceEvent::RequestFinish {
                request: 0,
                arrival: 0.5,
                first_token: 2.25,
            },
        );
        r.append_stage_events_bounded(&tl, 6.5);
        r
    }

    fn analysis() -> Analysis {
        let j = journal();
        analyze(&[("engine".to_string(), &j)])
    }

    #[test]
    fn reports_validate_and_are_byte_stable() {
        let a = analysis();
        let span_json = span_report_json(&a);
        let check = validate_span_report(&span_json).expect("span report valid");
        assert_eq!(check.spans, 1);
        assert_eq!(check.incomplete, 0);
        let bubble_json = bubble_report_json(&a);
        let bcheck = validate_bubble_report(&bubble_json).expect("bubble report valid");
        assert_eq!(bcheck.replicas, 1);
        assert!(bcheck.gaps > 0);
        // Re-analysis of the same journal is byte-identical.
        let b = analysis();
        assert_eq!(span_json, span_report_json(&b));
        assert_eq!(bubble_json, bubble_report_json(&b));
    }

    #[test]
    fn validators_reject_tampered_totals() {
        let a = analysis();
        let span_json = span_report_json(&a);
        // Flip one totals digit: exactness check must fire.
        let tampered = span_json.replacen("\"queue\":0.5", "\"queue\":0.6", 1);
        assert_ne!(span_json, tampered, "fixture must contain the queue total");
        assert!(validate_span_report(&tampered).is_err());

        let bubble_json = bubble_report_json(&a);
        let tampered = bubble_json.replacen("\"idle_total\":", "\"idle_total\":1e9,\"x\":", 1);
        assert!(validate_bubble_report(&tampered).is_err());
        assert!(validate_span_report("not json").is_err());
        assert!(validate_bubble_report("{}").is_err());
    }

    #[test]
    fn chrome_export_passes_trace_validation() {
        let a = analysis();
        let json = span_chrome_trace(&a);
        let check = tdpipe_trace::validate_chrome_trace(&json).expect("valid chrome trace");
        assert_eq!(check.tracks, 1);
        assert!(check.complete_events >= 3);
    }

    #[test]
    fn fleet_tids_do_not_collide_across_replicas() {
        let j0 = journal();
        let j1 = journal();
        let a = analyze(&[("r0".to_string(), &j0), ("r1".to_string(), &j1)]);
        let json = span_chrome_trace(&a);
        let check = tdpipe_trace::validate_chrome_trace(&json).expect("valid fleet trace");
        assert_eq!(check.tracks, 2, "one lane per (replica, request)");
    }

    #[test]
    fn metrics_bridge_exports_sorted_entries() {
        let a = analysis();
        let snap = span_metrics(&a);
        assert!(snap.scalar("bubble_seconds").is_some());
        assert_eq!(snap.scalar("span_requests"), Some(1.0));
        assert!(snap
            .get_labeled("span_seconds_total", &[("component", "queue")])
            .is_some());
        // Sorted by (name, labels): serialization is byte-stable.
        let json_a = serde_json::to_string(&snap).unwrap();
        let json_b = serde_json::to_string(&span_metrics(&a)).unwrap();
        assert_eq!(json_a, json_b);
        let mut sorted = snap.metrics.clone();
        sorted.sort_by(|x, y| (&x.name, &x.labels).cmp(&(&y.name, &y.labels)));
        assert_eq!(sorted, snap.metrics);
    }

    #[test]
    fn text_tables_render_every_section() {
        let a = analysis();
        let st = span_table(&a);
        assert!(st.contains("span report"));
        assert!(st.contains("queue"));
        assert!(st.contains("replica engine"));
        let bt = bubble_table(&a);
        assert!(bt.contains("bubble ledger"));
        assert!(bt.contains("phase_switch") || bt.contains("warmup"));
        assert!(bt.contains("critical device"));
    }
}
