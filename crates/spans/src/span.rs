//! Per-request span reconstruction from the flight-recorder journal.
//!
//! A [`RequestSpan`] decomposes one request's lifecycle — arrival → first
//! admission → executor launch → prefill completion → decode (with
//! eviction/recompute stalls) → finish — into named duration components
//! that **sum exactly** to the reported latency figures. Exactness is by
//! construction, not tolerance: every component set designates one
//! *closure* component defined as `target - fold(others)` (nudged within
//! a few ulps so the canonical left fold lands bit-exactly on the
//! target), while every other component is a direct timestamp
//! difference. The pinned identities are:
//!
//! 1. `fold([queue, prefill_wait, prefill_exec]) == ttft`
//! 2. `fold([stall_pending, recompute, decode_active]) == decode_total`
//! 3. `fold(all seven components, struct order) == latency`
//!
//! where `fold` is [`fold_seconds`] (a left fold from `+0.0`) and `==`
//! is exact `f64` equality.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tdpipe_trace::{AdmitReason, FlightRecorder, TraceEvent};

/// Canonical accumulation order for span identities: a left fold from
/// `+0.0`. Both the builder's closure components and the validator use
/// this exact fold, which is what makes the identities bit-exact.
pub fn fold_seconds(parts: &[f64]) -> f64 {
    parts.iter().fold(0.0, |acc, &x| acc + x)
}

/// Smallest representable step up from `x` (finite inputs).
fn next_after_up(x: f64) -> f64 {
    if x == 0.0 {
        return f64::from_bits(1);
    }
    let b = x.to_bits();
    f64::from_bits(if x > 0.0 { b + 1 } else { b - 1 })
}

/// Smallest representable step down from `x` (finite inputs).
fn next_after_down(x: f64) -> f64 {
    if x == 0.0 {
        return -f64::from_bits(1);
    }
    let b = x.to_bits();
    f64::from_bits(if x > 0.0 { b - 1 } else { b + 1 })
}

/// The closure component: a `c` such that `partial + c == target`
/// exactly. `target - partial` is the right value up to one rounding;
/// when `partial + (target - partial)` misses `target` by an ulp the
/// candidate is nudged (deterministically) until the fold identity
/// holds. Pure `f64` arithmetic — bit-stable across platforms.
pub fn close_component(target: f64, partial: f64) -> f64 {
    let c0 = target - partial;
    if partial + c0 == target {
        return c0;
    }
    let (mut up, mut down) = (c0, c0);
    for _ in 0..4 {
        up = next_after_up(up);
        if partial + up == target {
            return up;
        }
        down = next_after_down(down);
        if partial + down == target {
            return down;
        }
    }
    c0
}

/// The named duration components of one request's lifecycle.
///
/// Direct measurements: `queue`, `prefill_wait`, `stall_pending`,
/// `recompute`. Closures (see module docs): `prefill_exec` (against
/// TTFT), `decode_active` (against the decode total), `residual`
/// (against end-to-end latency; float dust, at most a few ulps).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpanComponents {
    /// Arrival → first prefill admission (scheduler queueing).
    pub queue: f64,
    /// Admission → executor-ready (serialised launch overhead).
    pub prefill_wait: f64,
    /// Executor-ready → first token (closure against TTFT).
    pub prefill_exec: f64,
    /// Σ eviction → re-admission (request sat evicted, KV gone).
    pub stall_pending: f64,
    /// Σ re-admission → re-prefill completion (recompute work).
    pub recompute: f64,
    /// Token generation (closure against `finish - first_token`).
    pub decode_active: f64,
    /// Closure against end-to-end latency; ±ulps of float dust.
    pub residual: f64,
}

impl SpanComponents {
    /// Component names, in the canonical (struct/fold) order.
    pub const NAMES: [&'static str; 7] = [
        "queue",
        "prefill_wait",
        "prefill_exec",
        "stall_pending",
        "recompute",
        "decode_active",
        "residual",
    ];

    /// Components in the canonical fold order.
    pub fn as_array(&self) -> [f64; 7] {
        [
            self.queue,
            self.prefill_wait,
            self.prefill_exec,
            self.stall_pending,
            self.recompute,
            self.decode_active,
            self.residual,
        ]
    }
}

/// One request's reconstructed lifecycle span.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestSpan {
    /// Request id (trace-level identity).
    pub request: u64,
    /// Time the request entered the system.
    pub arrival: f64,
    /// Time its first output token appeared.
    pub first_token: f64,
    /// Time its last output token appeared.
    pub finish: f64,
    /// `first_token - arrival` — the reported TTFT.
    pub ttft: f64,
    /// `finish - first_token` — the decode side of the lifecycle.
    pub decode_total: f64,
    /// `finish - arrival` — the reported end-to-end latency.
    pub latency: f64,
    /// Times the request was evicted (recompute or swap).
    pub evictions: u32,
    /// Session-KV reuse hit on admission.
    pub reuse_hit: bool,
    /// Resumed session turn that paid a full prefill.
    pub reuse_miss: bool,
    /// The exact decomposition (see [`SpanComponents`]).
    pub components: SpanComponents,
}

impl RequestSpan {
    /// Check the three exactness identities (module docs) on this span.
    pub fn identities_hold(&self) -> bool {
        let c = self.components;
        fold_seconds(&[c.queue, c.prefill_wait, c.prefill_exec]) == self.ttft
            && fold_seconds(&[c.stall_pending, c.recompute, c.decode_active])
                == self.decode_total
            && fold_seconds(&c.as_array()) == self.latency
    }
}

/// Per-request builder state while walking the journal.
struct Build {
    arrival: f64,
    admit: f64,
    batch_ready: f64,
    first_token: f64,
    finish: f64,
    evicted_at: f64,
    recompute_open: f64,
    stall_pending: f64,
    recompute: f64,
    evictions: u32,
    reuse_hit: bool,
    reuse_miss: bool,
}

impl Default for Build {
    fn default() -> Self {
        Build {
            arrival: f64::NAN,
            admit: f64::NAN,
            batch_ready: f64::NAN,
            first_token: f64::NAN,
            finish: f64::NAN,
            evicted_at: f64::NAN,
            recompute_open: f64::NAN,
            stall_pending: 0.0,
            recompute: 0.0,
            evictions: 0,
            reuse_hit: false,
            reuse_miss: false,
        }
    }
}

/// Reconstruct per-request spans from a journal. Returns the spans
/// (sorted by request id) plus the number of requests whose lifecycle
/// was incomplete in the journal (no `RequestFinish` — e.g. a journal
/// from a run that was cut short) and therefore skipped.
pub fn build_spans(journal: &FlightRecorder) -> (Vec<RequestSpan>, usize) {
    let mut builds: BTreeMap<u64, Build> = BTreeMap::new();
    // The launch-ready instant of the prefill batch currently being
    // journalled: `PrefillLaunch` precedes its members' `PrefillAdmit`
    // events; `PrefillStop` terminates the batch.
    let mut cur_launch: Option<f64> = None;
    for e in journal.events() {
        match e.event {
            TraceEvent::PrefillLaunch { ready, .. } => cur_launch = Some(ready),
            TraceEvent::PrefillStop { .. } => cur_launch = None,
            TraceEvent::PrefillAdmit {
                request, reason, ..
            } => {
                let b = builds.entry(request).or_default();
                if b.admit.is_nan() {
                    // First admission: anchors queue + prefill-wait.
                    b.admit = e.t;
                    b.batch_ready = match reason {
                        // Swap-ins re-enter via a host-link transfer, not
                        // a prefill batch: no launch-overhead wait.
                        AdmitReason::SwapIn => e.t,
                        _ => cur_launch.unwrap_or(e.t),
                    };
                } else {
                    // Re-admission after an eviction closes the pending
                    // stall; a recompute admission opens a recompute
                    // episode that its `PrefillDone` will close.
                    if !b.evicted_at.is_nan() {
                        b.stall_pending += e.t - b.evicted_at;
                        b.evicted_at = f64::NAN;
                    }
                    if !matches!(reason, AdmitReason::SwapIn) {
                        b.recompute_open = e.t;
                    }
                }
            }
            TraceEvent::PrefillDone { request } => {
                let b = builds.entry(request).or_default();
                if b.first_token.is_nan() {
                    b.first_token = e.t;
                } else if !b.recompute_open.is_nan() {
                    b.recompute += e.t - b.recompute_open;
                    b.recompute_open = f64::NAN;
                }
            }
            TraceEvent::Evict { victim, .. } => {
                let b = builds.entry(victim).or_default();
                b.evicted_at = e.t;
                b.evictions += 1;
            }
            TraceEvent::SessionReuseHit { request, .. } => {
                builds.entry(request).or_default().reuse_hit = true;
            }
            TraceEvent::SessionReuseMiss { request } => {
                builds.entry(request).or_default().reuse_miss = true;
            }
            TraceEvent::RequestFinish {
                request,
                arrival,
                first_token,
            } => {
                let b = builds.entry(request).or_default();
                b.arrival = arrival;
                // Authoritative (the engine's set-once stamp); the
                // journal-side `PrefillDone` guard can only differ by
                // completion-time jitter that never occurs in practice.
                b.first_token = first_token;
                b.finish = e.t;
            }
            _ => {}
        }
    }

    let mut spans = Vec::with_capacity(builds.len());
    let mut incomplete = 0usize;
    for (request, b) in builds {
        if b.finish.is_nan() || b.first_token.is_nan() || b.admit.is_nan() {
            incomplete += 1;
            continue;
        }
        let ttft = b.first_token - b.arrival;
        let decode_total = b.finish - b.first_token;
        let latency = b.finish - b.arrival;
        let queue = b.admit - b.arrival;
        let prefill_wait = b.batch_ready - b.admit;
        let prefill_exec = close_component(ttft, fold_seconds(&[queue, prefill_wait]));
        let stall_pending = b.stall_pending;
        let recompute = b.recompute;
        let decode_active =
            close_component(decode_total, fold_seconds(&[stall_pending, recompute]));
        let residual = close_component(
            latency,
            fold_seconds(&[
                queue,
                prefill_wait,
                prefill_exec,
                stall_pending,
                recompute,
                decode_active,
            ]),
        );
        spans.push(RequestSpan {
            request,
            arrival: b.arrival,
            first_token: b.first_token,
            finish: b.finish,
            ttft,
            decode_total,
            latency,
            evictions: b.evictions,
            reuse_hit: b.reuse_hit,
            reuse_miss: b.reuse_miss,
            components: SpanComponents {
                queue,
                prefill_wait,
                prefill_exec,
                stall_pending,
                recompute,
                decode_active,
                residual,
            },
        });
    }
    (spans, incomplete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdpipe_trace::{PrefillStopReason, EvictMode};

    fn journal_one_request() -> FlightRecorder {
        let mut r = FlightRecorder::with_capacity(16);
        r.record(
            1.0,
            TraceEvent::PrefillLaunch {
                seq: 1,
                batch: 1,
                tokens: 100,
                ready: 1.25,
            },
        );
        r.record(
            1.0,
            TraceEvent::PrefillAdmit {
                request: 7,
                tokens: 100,
                reason: AdmitReason::FirstPrefill,
            },
        );
        r.record(
            1.0,
            TraceEvent::PrefillStop {
                reason: PrefillStopReason::Exhausted,
                admitted: 1,
            },
        );
        r.record(2.5, TraceEvent::PrefillDone { request: 7 });
        r.record(
            9.0,
            TraceEvent::RequestFinish {
                request: 7,
                arrival: 0.25,
                first_token: 2.5,
            },
        );
        r
    }

    #[test]
    fn single_request_decomposes_exactly() {
        let (spans, incomplete) = build_spans(&journal_one_request());
        assert_eq!(incomplete, 0);
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.request, 7);
        assert_eq!(s.components.queue, 0.75);
        assert_eq!(s.components.prefill_wait, 0.25);
        assert_eq!(s.components.stall_pending, 0.0);
        assert!(s.identities_hold());
        assert_eq!(s.ttft, 2.25);
        assert_eq!(s.latency, 8.75);
    }

    #[test]
    fn eviction_episode_becomes_stall_plus_recompute() {
        let mut r = journal_one_request();
        // A second request that gets evicted mid-decode and recomputed.
        // (Times continue past the first request's journal entries.)
        let mut r2 = FlightRecorder::with_capacity(16);
        for e in r.events() {
            r2.record(e.t, e.event);
        }
        r2.record(
            10.0,
            TraceEvent::Evict {
                mode: EvictMode::Recompute,
                victim: 7,
            },
        );
        r2.record(
            12.0,
            TraceEvent::PrefillAdmit {
                request: 7,
                tokens: 100,
                reason: AdmitReason::Recompute,
            },
        );
        r2.record(13.5, TraceEvent::PrefillDone { request: 7 });
        r = r2;
        // Re-finish later than before (overwrite semantics: the last
        // RequestFinish wins; in real journals there is exactly one).
        r.record(
            20.0,
            TraceEvent::RequestFinish {
                request: 7,
                arrival: 0.25,
                first_token: 2.5,
            },
        );
        let (spans, _) = build_spans(&r);
        let s = &spans[0];
        assert_eq!(s.evictions, 1);
        assert_eq!(s.components.stall_pending, 2.0);
        assert_eq!(s.components.recompute, 1.5);
        assert!(s.identities_hold());
    }

    #[test]
    fn incomplete_lifecycles_are_skipped_not_fabricated() {
        let mut r = FlightRecorder::with_capacity(4);
        r.record(
            1.0,
            TraceEvent::PrefillAdmit {
                request: 3,
                tokens: 64,
                reason: AdmitReason::FirstPrefill,
            },
        );
        let (spans, incomplete) = build_spans(&r);
        assert!(spans.is_empty());
        assert_eq!(incomplete, 1);
    }

    #[test]
    fn close_component_fixes_the_fold_identity() {
        // Adversarial magnitudes where `target - partial` rounds.
        let cases = [
            (1e16, 3.0),
            (0.1, 0.30000000000000004),
            (1.0, 1e-17),
            (12345.6789, 0.000123),
            (2.0, 2.0),
            (5.0, 7.5), // partial exceeding target → negative closure
        ];
        for (target, partial) in cases {
            let c = close_component(target, partial);
            assert_eq!(partial + c, target, "target={target} partial={partial}");
        }
    }
}
