//! The bubble ledger: every idle second on every device, attributed.
//!
//! TD-Pipe's central claim is about *pipeline bubbles* — seconds a stage
//! sits idle while the run is in flight. The flight recorder already
//! journals each idle gap as a `StageIdle` event (bounded mode adds the
//! warm-up and drain boundary gaps, so per device busy + idle tiles the
//! whole run). This module walks those gaps in journal order and assigns
//! each one a single [`BubbleCause`], producing a [`BubbleLedger`] whose
//! accounting identity is exact by construction:
//!
//! > per device, the in-order left fold of attributed gap durations is
//! > **bit-identical** to the in-order left fold of that device's
//! > `StageIdle` durations in the journal —
//!
//! because the attributed gaps *are* those events, in the same order,
//! partitioned by cause without reordering. The per-cause buckets are
//! accumulated in the same sweep, so a validator replaying the gap list
//! reproduces every bucket bit-exactly.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tdpipe_kvcache::Phase;
use tdpipe_trace::{FlightRecorder, PrefillStopReason, TraceEvent};

use crate::span::fold_seconds;

/// Why a device sat idle for one gap. Causes are checked in declaration
/// order (top wins) — the priority encodes specificity: structural
/// boundary idleness first, then idleness with a journalled trigger
/// inside the gap, then the phase-implied fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BubbleCause {
    /// Pipeline warm-up: the device has not executed anything yet (the
    /// fill ramp at t = 0, or after a long empty-system stretch).
    Warmup,
    /// Pipeline drain: the device is past its last segment, waiting for
    /// downstream stages to finish the run.
    Drain,
    /// The whole engine fast-forwarded to the next arrival — nothing was
    /// resident and nothing had arrived (overlaps an `ArrivalWait`).
    ArrivalStarvation,
    /// A prefill↔decode phase boundary fell inside the gap: the §2.3
    /// phase-switch drain bubble TD-Pipe exists to shrink.
    PhaseSwitch,
    /// KV pressure relief fell inside the gap (eviction, session-prefix
    /// drop, or a memory-limited prefill stop).
    MemoryStall,
    /// A §3.4 steal decision fell inside the gap — idleness from decode
    /// batches being rebalanced rather than executed.
    StealImbalance,
    /// Decode-phase fallback: the stage is waiting on the sequential
    /// token dependency (micro-batch too small to fill the pipeline).
    DecodeDependency,
    /// Prefill-phase fallback: the stage is waiting on batch assembly /
    /// launch serialisation between prefill batches.
    LaunchSerialization,
}

impl BubbleCause {
    /// All causes, in priority (= declaration) order.
    pub const ALL: [BubbleCause; 8] = [
        BubbleCause::Warmup,
        BubbleCause::Drain,
        BubbleCause::ArrivalStarvation,
        BubbleCause::PhaseSwitch,
        BubbleCause::MemoryStall,
        BubbleCause::StealImbalance,
        BubbleCause::DecodeDependency,
        BubbleCause::LaunchSerialization,
    ];

    /// Stable snake_case label (JSON bucket keys, metric label values).
    pub const fn label(&self) -> &'static str {
        match self {
            BubbleCause::Warmup => "warmup",
            BubbleCause::Drain => "drain",
            BubbleCause::ArrivalStarvation => "arrival_starvation",
            BubbleCause::PhaseSwitch => "phase_switch",
            BubbleCause::MemoryStall => "memory_stall",
            BubbleCause::StealImbalance => "steal_imbalance",
            BubbleCause::DecodeDependency => "decode_dependency",
            BubbleCause::LaunchSerialization => "launch_serialization",
        }
    }
}

/// One attributed idle gap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttributedBubble {
    /// Device (pipeline stage) index.
    pub device: u32,
    /// Gap start (virtual seconds).
    pub start: f64,
    /// Gap length (virtual seconds) — exactly the `StageIdle` duration.
    pub dur: f64,
    /// The single cause this gap is charged to.
    pub cause: BubbleCause,
}

/// One device's idle accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceBubbles {
    /// Device (pipeline stage) index.
    pub device: u32,
    /// Busy seconds (in-order fold of the device's `StageBusy` durations).
    pub busy: f64,
    /// Idle seconds: the in-order fold of the device's attributed gap
    /// durations — bit-equal to folding its journal `StageIdle` events.
    pub idle_total: f64,
    /// Idle seconds per cause label, accumulated in the same sweep.
    pub by_cause: BTreeMap<String, f64>,
}

/// The full attribution of a journal's idle time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BubbleLedger {
    /// Per-device accounting, ascending device index.
    pub devices: Vec<DeviceBubbles>,
    /// Every attributed gap, in journal (`stage_events`) order.
    pub gaps: Vec<AttributedBubble>,
    /// Idle seconds per cause across all devices, accumulated by
    /// sweeping `gaps` in order.
    pub by_cause: BTreeMap<String, f64>,
}

impl BubbleLedger {
    /// In-order idle fold for one device — the exactness reference:
    /// equals `devices[i].idle_total` bit-for-bit.
    pub fn refold_idle(&self, device: u32) -> f64 {
        let durs: Vec<f64> = self
            .gaps
            .iter()
            .filter(|g| g.device == device)
            .map(|g| g.dur)
            .collect();
        fold_seconds(&durs)
    }
}

/// Trigger timestamps extracted from the engine-event journal, each in
/// ascending time order (the journal's order), for interval lookups.
struct Triggers {
    /// `[t, until]` arrival-starvation windows.
    arrival_windows: Vec<(f64, f64)>,
    /// `PhaseSwitch` instants.
    switches: Vec<f64>,
    /// `Evict` / `SessionDrop` / `PrefillStop{Memory}` instants.
    memory: Vec<f64>,
    /// `StealWithhold` / `StealSupplement` instants.
    steals: Vec<f64>,
    /// Phase timeline: `(since, phase)`, starting `(0.0, Prefill)`.
    phases: Vec<(f64, Phase)>,
}

impl Triggers {
    fn from_journal(journal: &FlightRecorder) -> Self {
        let mut t = Triggers {
            arrival_windows: Vec::new(),
            switches: Vec::new(),
            memory: Vec::new(),
            steals: Vec::new(),
            phases: vec![(0.0, Phase::Prefill)],
        };
        for e in journal.events() {
            match e.event {
                TraceEvent::ArrivalWait { until } => t.arrival_windows.push((e.t, until)),
                TraceEvent::PhaseSwitch { to, .. } => {
                    t.switches.push(e.t);
                    t.phases.push((e.t, to));
                }
                TraceEvent::Evict { .. } | TraceEvent::SessionDrop { .. } => t.memory.push(e.t),
                TraceEvent::PrefillStop {
                    reason: PrefillStopReason::Memory,
                    ..
                } => t.memory.push(e.t),
                TraceEvent::StealWithhold { .. } | TraceEvent::StealSupplement { .. } => {
                    t.steals.push(e.t)
                }
                _ => {}
            }
        }
        t
    }

    /// Any instant from sorted `times` inside the half-open `[start, end)`?
    fn any_in(times: &[f64], start: f64, end: f64) -> bool {
        let i = times.partition_point(|&x| x < start);
        i < times.len() && times[i] < end
    }

    /// Does `[start, end)` overlap any arrival-starvation window?
    fn starved(&self, start: f64, end: f64) -> bool {
        // Windows are few and time-ordered; a linear scan is fine and
        // keeps the overlap predicate obvious.
        self.arrival_windows
            .iter()
            .any(|&(a, b)| a < end && start < b)
    }

    /// The engine phase in effect at instant `t`.
    fn phase_at(&self, t: f64) -> Phase {
        let i = self.phases.partition_point(|&(since, _)| since <= t);
        self.phases[i.saturating_sub(1)].1
    }
}

/// Classify one gap. `seen_busy` — the device had a segment before this
/// gap; `last_busy_end` — end of the device's final segment (drain test).
fn classify(
    trig: &Triggers,
    start: f64,
    dur: f64,
    seen_busy: bool,
    last_busy_end: f64,
) -> BubbleCause {
    let end = start + dur;
    if !seen_busy {
        return BubbleCause::Warmup;
    }
    if start >= last_busy_end {
        return BubbleCause::Drain;
    }
    if trig.starved(start, end) {
        return BubbleCause::ArrivalStarvation;
    }
    if Triggers::any_in(&trig.switches, start, end) {
        return BubbleCause::PhaseSwitch;
    }
    if Triggers::any_in(&trig.memory, start, end) {
        return BubbleCause::MemoryStall;
    }
    if Triggers::any_in(&trig.steals, start, end) {
        return BubbleCause::StealImbalance;
    }
    match trig.phase_at(start) {
        Phase::Decode => BubbleCause::DecodeDependency,
        Phase::Prefill => BubbleCause::LaunchSerialization,
    }
}

/// Attribute every `StageIdle` gap in `journal` to a cause.
///
/// Requires a journal whose stage events were appended (bounded mode
/// recommended — without it warm-up/drain gaps are absent, and the
/// ledger accounts only the *interior* idleness). Deterministic: a pure
/// in-order sweep with `BTreeMap` buckets.
pub fn attribute_bubbles(journal: &FlightRecorder) -> BubbleLedger {
    let trig = Triggers::from_journal(journal);

    // Per device: last busy end (for the drain test) — one pre-pass.
    let mut last_busy: BTreeMap<u32, f64> = BTreeMap::new();
    for e in journal.stage_events() {
        if let TraceEvent::StageBusy { device, dur, .. } = e.event {
            let end = e.t + dur;
            let slot = last_busy.entry(device).or_insert(end);
            if end > *slot {
                *slot = end;
            }
        }
    }

    let mut gaps: Vec<AttributedBubble> = Vec::new();
    let mut per_device: BTreeMap<u32, DeviceBubbles> = BTreeMap::new();
    let mut seen_busy: BTreeMap<u32, bool> = BTreeMap::new();
    for e in journal.stage_events() {
        match e.event {
            TraceEvent::StageBusy { device, dur, .. } => {
                seen_busy.insert(device, true);
                let d = per_device.entry(device).or_insert_with(|| DeviceBubbles {
                    device,
                    busy: 0.0,
                    idle_total: 0.0,
                    by_cause: BTreeMap::new(),
                });
                d.busy += dur;
            }
            TraceEvent::StageIdle { device, dur } => {
                let cause = classify(
                    &trig,
                    e.t,
                    dur,
                    seen_busy.get(&device).copied().unwrap_or(false),
                    last_busy.get(&device).copied().unwrap_or(f64::INFINITY),
                );
                gaps.push(AttributedBubble {
                    device,
                    start: e.t,
                    dur,
                    cause,
                });
                let d = per_device.entry(device).or_insert_with(|| DeviceBubbles {
                    device,
                    busy: 0.0,
                    idle_total: 0.0,
                    by_cause: BTreeMap::new(),
                });
                d.idle_total += dur;
                *d.by_cause.entry(cause.label().to_string()).or_insert(0.0) += dur;
            }
            _ => {}
        }
    }

    // Fleet (per-journal) buckets: same sweep order as `gaps`.
    let mut by_cause: BTreeMap<String, f64> = BTreeMap::new();
    for g in &gaps {
        *by_cause.entry(g.cause.label().to_string()).or_insert(0.0) += g.dur;
    }

    BubbleLedger {
        devices: per_device.into_values().collect(),
        gaps,
        by_cause,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdpipe_sim::{SegmentKind, Timeline};

    /// Two devices, one phase switch, one eviction, one arrival wait —
    /// every classifier branch exercised.
    fn journal() -> FlightRecorder {
        let mut tl = Timeline::new(true);
        // Device 0: busy [1,2] (prefill), idle [2,3], busy [3,4] (decode),
        //           idle [4,6], busy [6,7].
        tl.record(0, 1.0, 2.0, SegmentKind::Prefill, 1);
        tl.record(0, 3.0, 4.0, SegmentKind::Decode, 2);
        tl.record(0, 6.0, 7.0, SegmentKind::Decode, 3);
        // Device 1: busy [1.5,2.5], then nothing (drain from 2.5).
        tl.record(1, 1.5, 2.5, SegmentKind::Prefill, 1);
        let mut r = FlightRecorder::with_capacity(8);
        r.record(0.0, TraceEvent::ArrivalWait { until: 0.75 });
        r.record(
            2.5,
            TraceEvent::PhaseSwitch {
                from: Phase::Prefill,
                to: Phase::Decode,
            },
        );
        r.record(
            4.5,
            TraceEvent::Evict {
                mode: tdpipe_trace::EvictMode::Recompute,
                victim: 9,
            },
        );
        r.append_stage_events_bounded(&tl, 8.0);
        r
    }

    #[test]
    fn every_gap_gets_the_priority_cause() {
        let ledger = attribute_bubbles(&journal());
        let causes: Vec<(u32, f64, BubbleCause)> = ledger
            .gaps
            .iter()
            .map(|g| (g.device, g.start, g.cause))
            .collect();
        assert_eq!(
            causes,
            vec![
                // Device 0: warm-up [0,1] (ArrivalWait overlaps, but the
                // device has not run yet — warm-up wins by priority).
                (0, 0.0, BubbleCause::Warmup),
                // [2,3]: the 2.5 phase switch falls inside.
                (0, 2.0, BubbleCause::PhaseSwitch),
                // [4,6]: the 4.5 eviction falls inside.
                (0, 4.0, BubbleCause::MemoryStall),
                // [7,8]: past device 0's last segment — drain.
                (0, 7.0, BubbleCause::Drain),
                // Device 1 warm-up [0,1.5].
                (1, 0.0, BubbleCause::Warmup),
                // Device 1 [2.5,8]: past its last segment — drain.
                (1, 2.5, BubbleCause::Drain),
            ]
        );
    }

    #[test]
    fn idle_totals_refold_bit_exactly() {
        let ledger = attribute_bubbles(&journal());
        for d in &ledger.devices {
            assert_eq!(
                d.idle_total.to_bits(),
                ledger.refold_idle(d.device).to_bits(),
                "device {}",
                d.device
            );
            let bucket_sum: f64 = {
                // Recompute buckets by sweeping the gap list in order —
                // must land on the ledger's buckets bit-for-bit.
                let mut again: BTreeMap<String, f64> = BTreeMap::new();
                for g in ledger.gaps.iter().filter(|g| g.device == d.device) {
                    *again.entry(g.cause.label().to_string()).or_insert(0.0) += g.dur;
                }
                assert_eq!(again, d.by_cause, "device {}", d.device);
                again.values().sum()
            };
            // Buckets partition the gaps; their sum only reorders the
            // fold, so allow the comparison to be semantic here.
            assert!((bucket_sum - d.idle_total).abs() < 1e-12);
        }
    }

    #[test]
    fn decode_and_prefill_fallbacks_split_by_phase() {
        let mut tl = Timeline::new(true);
        tl.record(0, 0.0, 1.0, SegmentKind::Prefill, 1);
        tl.record(0, 1.5, 2.0, SegmentKind::Prefill, 1);
        tl.record(0, 3.5, 4.0, SegmentKind::Decode, 2);
        tl.record(0, 4.5, 5.0, SegmentKind::Decode, 2);
        let mut r = FlightRecorder::with_capacity(2);
        r.record(
            3.0,
            TraceEvent::PhaseSwitch {
                from: Phase::Prefill,
                to: Phase::Decode,
            },
        );
        r.append_stage_events(&tl); // interior gaps only
        let ledger = attribute_bubbles(&r);
        let causes: Vec<BubbleCause> = ledger.gaps.iter().map(|g| g.cause).collect();
        assert_eq!(
            causes,
            vec![
                // [1,1.5]: prefill phase, no trigger → launch serialisation.
                BubbleCause::LaunchSerialization,
                // [2,3.5]: the 3.0 switch falls inside.
                BubbleCause::PhaseSwitch,
                // [4,4.5]: decode phase, no trigger → decode dependency.
                BubbleCause::DecodeDependency,
            ]
        );
    }

    #[test]
    fn fleet_buckets_cover_every_gap() {
        let ledger = attribute_bubbles(&journal());
        let n: usize = ledger.gaps.len();
        assert!(n > 0);
        let total: f64 = ledger.by_cause.values().sum();
        let direct: f64 = ledger.gaps.iter().map(|g| g.dur).sum();
        assert!((total - direct).abs() < 1e-12);
    }
}
