//! Critical-path extraction: what the makespan is actually made of.
//!
//! In a synchronous pipeline the **output stage** (the last device) is
//! the run's critical path: the run ends when it emits the final token,
//! and with bounded stage events its busy + idle gaps tile `[0,
//! makespan]` wall-to-wall. Ranking that stage's time — busy seconds
//! against each attributed bubble bucket — names the makespan's
//! contributors in order: "the run took 212 s; 148 s compute, 31 s
//! phase-switch bubbles, 18 s arrival starvation, …". That ranked list
//! is the throughput to-do list the paper's §2.3 motivates.

use serde::{Deserialize, Serialize};

use crate::bubble::BubbleLedger;

/// One named contributor to the critical path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Contributor {
    /// `"busy"` or a [`BubbleCause`](crate::BubbleCause) label.
    pub name: String,
    /// Seconds charged to this contributor on the critical device.
    pub seconds: f64,
    /// `seconds / makespan` (0 when the makespan is 0).
    pub share: f64,
}

/// The ranked decomposition of the run's makespan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalPath {
    /// The critical device (the pipeline's output stage).
    pub device: u32,
    /// Run length in virtual seconds.
    pub makespan: f64,
    /// Contributors, descending seconds (ties broken by name) — `"busy"`
    /// plus every bubble cause with nonzero time on the device.
    pub contributors: Vec<Contributor>,
}

/// Extract the critical path from an attributed ledger.
///
/// The critical device is the highest device index (the output stage);
/// an empty ledger yields an empty path. Sorting uses `total_cmp`, so
/// the ranking is total and deterministic.
pub fn critical_path(ledger: &BubbleLedger, makespan: f64) -> CriticalPath {
    let Some(dev) = ledger.devices.iter().max_by_key(|d| d.device) else {
        return CriticalPath {
            device: 0,
            makespan,
            contributors: Vec::new(),
        };
    };
    let mut contributors = Vec::with_capacity(dev.by_cause.len() + 1);
    contributors.push(Contributor {
        name: "busy".to_string(),
        seconds: dev.busy,
        share: 0.0,
    });
    for (cause, &secs) in &dev.by_cause {
        contributors.push(Contributor {
            name: cause.clone(),
            seconds: secs,
            share: 0.0,
        });
    }
    for c in &mut contributors {
        c.share = if makespan > 0.0 {
            c.seconds / makespan
        } else {
            0.0
        };
    }
    contributors.sort_by(|a, b| {
        b.seconds
            .total_cmp(&a.seconds)
            .then_with(|| a.name.cmp(&b.name))
    });
    CriticalPath {
        device: dev.device,
        makespan,
        contributors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bubble::attribute_bubbles;
    use tdpipe_sim::{SegmentKind, Timeline};
    use tdpipe_trace::FlightRecorder;

    #[test]
    fn output_stage_is_ranked_busy_first() {
        let mut tl = Timeline::new(true);
        tl.record(0, 0.0, 3.0, SegmentKind::Prefill, 1);
        tl.record(1, 0.5, 3.5, SegmentKind::Prefill, 1);
        let mut r = FlightRecorder::with_capacity(0);
        r.append_stage_events_bounded(&tl, 4.0);
        let ledger = attribute_bubbles(&r);
        let cp = critical_path(&ledger, 4.0);
        assert_eq!(cp.device, 1);
        assert_eq!(cp.contributors[0].name, "busy");
        assert_eq!(cp.contributors[0].seconds, 3.0);
        assert_eq!(cp.contributors[0].share, 0.75);
        // Warm-up 0.5 + drain 0.5 on the output stage.
        let names: Vec<&str> = cp.contributors.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["busy", "drain", "warmup"]);
    }

    #[test]
    fn empty_ledger_yields_empty_path() {
        let r = FlightRecorder::with_capacity(0);
        let ledger = attribute_bubbles(&r);
        let cp = critical_path(&ledger, 0.0);
        assert!(cp.contributors.is_empty());
    }
}
