//! # tdpipe-spans — causal analysis over the flight recorder
//!
//! The flight recorder (tdpipe-trace) says *what the scheduler decided
//! and when*. This crate answers the two questions an operator actually
//! asks of a slow run:
//!
//! 1. **Where did this request's latency go?** [`build_spans`]
//!    reconstructs every request's lifecycle from the journal alone —
//!    scheduler queueing, launch-overhead wait, prefill execution,
//!    eviction stalls, recompute, decode — as a [`RequestSpan`] whose
//!    components sum **bit-exactly** to the reported TTFT and latency
//!    (three pinned fold identities; see [`span`]).
//! 2. **Where did the fleet's idle seconds go?** [`attribute_bubbles`]
//!    charges every journalled `StageIdle` gap to one of eight
//!    [`BubbleCause`]s — warm-up, drain, arrival starvation,
//!    phase-switch drain (the paper's §2.3 bubble), memory stalls,
//!    steal imbalance, and the per-phase dependency fallbacks — with
//!    per-device totals that refold bit-exactly from the gap list.
//!
//! On top sit [`critical_path`] (ranked makespan decomposition of the
//! output stage), the byte-stable JSON reports with exactness-checking
//! validators ([`validate_span_report`], [`validate_bubble_report`]),
//! a nested per-request Chrome-trace export, and a metrics bridge so
//! `metrics-diff` can gate bubble-time regressions.
//!
//! **Pure observer.** Everything here consumes a finished journal;
//! nothing feeds back into the engine. The engine-side instrumentation
//! this crate reads (`PrefillLaunch`, `PrefillDone`, `RequestFinish`,
//! `ArrivalWait`) is recorded behind the same `record_trace` gate as
//! the rest of the journal, and the on/off byte-identity of engine
//! results is pinned in `tests/spans_attribution.rs`.
//!
//! **Deterministic.** Analyses walk journal order, group into
//! `BTreeMap`s, sort floats with `total_cmp`, and serialize through the
//! vendored shortest-round-trip `serde_json` — identical journals
//! produce byte-identical reports regardless of thread count.

#![forbid(unsafe_code)]

pub mod bubble;
pub mod critical;
pub mod report;
pub mod span;

pub use bubble::{attribute_bubbles, AttributedBubble, BubbleCause, BubbleLedger, DeviceBubbles};
pub use critical::{critical_path, Contributor, CriticalPath};
pub use report::{
    analyze, bubble_report_json, bubble_table, span_chrome_trace, span_metrics, span_report_json,
    span_table, validate_bubble_report, validate_span_report, Analysis, BubbleReport,
    BubbleReportCheck, ReplicaAnalysis, SpanReport, SpanReportCheck, REPORT_VERSION,
};
pub use span::{build_spans, close_component, fold_seconds, RequestSpan, SpanComponents};
