//! # tdpipe-trace — the scheduling flight recorder
//!
//! The TD-Pipe engine makes its three headline decisions invisibly: the
//! §3.3 greedy-prefill stop, the §3.4 steal/withhold rebalance and the
//! §3.5 spatial-vs-temporal phase switch all happen deep inside the run
//! loop, and a run normally emits only aggregate numbers. When a figure
//! replication drifts, aggregate diffs say *that* something changed but
//! never *which decision* changed. This crate is the observability layer
//! every serving stack eventually grows (vLLM's per-step scheduler stats,
//! Orca's per-iteration admission logs):
//!
//! * [`FlightRecorder`] — a virtual-time-stamped, structured, append-only
//!   event journal ([`TraceEvent`]). Recording is gated at construction:
//!   a disabled recorder is a no-op whose `record` calls compile down to
//!   one branch, so default-configured runs stay bit-identical.
//! * [`chrome_trace`] — export a run (device [`Timeline`] + journal) as
//!   `chrome://tracing` / Perfetto JSON: one track per device, one
//!   "engine" track of instant decision events.
//! * [`decision_table`] — a per-phase plain-text table: why each prefill
//!   phase stopped, and the intensity pair at each decode→prefill switch
//!   (the numbers to read against paper Figs. 9/10/12).
//! * [`validate_chrome_trace`] — the schema check CI runs against an
//!   exported trace (valid JSON, monotone timestamps per track).
//!
//! Determinism contract: the journal holds only virtual times produced by
//! the deterministic engine — never wall clocks — and every export
//! iterates insertion- or index-ordered containers, so two identical runs
//! serialize byte-identically (pinned by `tests/trace_export.rs`).
//!
//! [`Timeline`]: tdpipe_sim::Timeline

#![forbid(unsafe_code)]

pub mod chrome;
pub mod event;
pub mod table;

pub use chrome::{chrome_trace, validate_chrome_trace, ChromeTraceCheck};
pub use event::{
    AdmitReason, EvictMode, FlightRecorder, PrefillStopReason, TimedEvent, TraceEvent,
};
pub use table::decision_table;
