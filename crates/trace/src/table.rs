//! The per-phase decision table: a plain-text digest of the journal.
//!
//! One row per engine phase, answering the questions the paper's
//! Figs. 9/10/12 raise: how many prompts each prefill phase admitted and
//! *why it stopped*, and — for decode phases — how much the §3.4 stealer
//! moved, what got evicted, and the §3.5 intensity pair at the switch.

use tdpipe_kvcache::Phase;

use crate::event::{EvictMode, FlightRecorder, PrefillStopReason, TraceEvent};

#[derive(Default, Clone)]
struct PhaseRow {
    phase: Option<Phase>,
    start: f64,
    end: f64,
    admits: u64,
    admit_tokens: u64,
    last_stop: Option<PrefillStopReason>,
    launches: usize,
    finishes: usize,
    arrival_waits: usize,
    withheld: usize,
    supplemented: usize,
    evict_recompute: usize,
    evict_swap: usize,
    last_switch: Option<(f64, f64, bool)>,
    session_retains: usize,
    session_drops: usize,
    reuse_hits: usize,
    reuse_hit_tokens: u64,
    reuse_misses: usize,
}

impl PhaseRow {
    /// Session-reuse traffic within the phase (empty when none happened,
    /// so non-session tables render unchanged).
    fn session_detail(&self) -> String {
        let mut parts = Vec::new();
        if self.reuse_hits > 0 || self.reuse_misses > 0 {
            parts.push(format!(
                "reuse {}hit ({} tok)/{}miss",
                self.reuse_hits, self.reuse_hit_tokens, self.reuse_misses
            ));
        }
        if self.session_retains > 0 || self.session_drops > 0 {
            parts.push(format!(
                "retain +{}/-{}",
                self.session_retains, self.session_drops
            ));
        }
        parts.join(", ")
    }

    fn detail(&self) -> String {
        match self.phase {
            Some(Phase::Prefill) => {
                let stop = self
                    .last_stop
                    .map(|r| format!("{r:?}"))
                    .unwrap_or_else(|| "-".into());
                let sess = self.session_detail();
                let sess = if sess.is_empty() {
                    sess
                } else {
                    format!(", {sess}")
                };
                let waits = if self.arrival_waits > 0 {
                    format!(", waited {}x for arrivals", self.arrival_waits)
                } else {
                    String::new()
                };
                format!(
                    "admitted {} ({} tok) in {} batches, stop: {}{waits}{sess}",
                    self.admits, self.admit_tokens, self.launches, stop
                )
            }
            Some(Phase::Decode) => {
                let mut parts = Vec::new();
                if self.finishes > 0 {
                    parts.push(format!("finished {}", self.finishes));
                }
                if self.withheld > 0 || self.supplemented > 0 {
                    parts.push(format!(
                        "steal -{}/+{}",
                        self.withheld, self.supplemented
                    ));
                }
                if self.evict_recompute > 0 || self.evict_swap > 0 {
                    parts.push(format!(
                        "evict {}r/{}s",
                        self.evict_recompute, self.evict_swap
                    ));
                }
                if let Some((sp, tp, sw)) = self.last_switch {
                    parts.push(format!(
                        "intensity {:.3} vs {:.3} -> {}",
                        sp,
                        tp,
                        if sw { "switch" } else { "stay" }
                    ));
                }
                let sess = self.session_detail();
                if !sess.is_empty() {
                    parts.push(sess);
                }
                if parts.is_empty() {
                    parts.push("drained".into());
                }
                parts.join(", ")
            }
            None => "-".into(),
        }
    }
}

/// Render the journal as a per-phase table. Returns a fixed-layout text
/// block (header + one line per phase); stable across identical runs.
pub fn decision_table(journal: &FlightRecorder) -> String {
    let mut rows: Vec<PhaseRow> = Vec::new();
    let mut cur = PhaseRow {
        phase: Some(Phase::Prefill),
        ..PhaseRow::default()
    };
    let mut first_event = true;
    for e in journal.events() {
        if first_event {
            cur.start = e.t;
            first_event = false;
        }
        cur.end = e.t;
        match e.event {
            TraceEvent::PhaseSwitch { from, to } => {
                cur.phase = Some(from);
                rows.push(cur.clone());
                cur = PhaseRow {
                    phase: Some(to),
                    start: e.t,
                    end: e.t,
                    ..PhaseRow::default()
                };
            }
            TraceEvent::PrefillAdmit { tokens, .. } => {
                cur.admits += 1;
                cur.admit_tokens += tokens;
            }
            TraceEvent::PrefillStop { reason, .. } => cur.last_stop = Some(reason),
            TraceEvent::PrefillLaunch { .. } => cur.launches += 1,
            TraceEvent::RequestFinish { .. } => cur.finishes += 1,
            TraceEvent::ArrivalWait { .. } => cur.arrival_waits += 1,
            TraceEvent::PrefillDone { .. } => {}
            TraceEvent::StealWithhold { n, .. } => cur.withheld += n,
            TraceEvent::StealSupplement { n, .. } => cur.supplemented += n,
            TraceEvent::Evict { mode, .. } => match mode {
                EvictMode::Recompute => cur.evict_recompute += 1,
                EvictMode::Swap => cur.evict_swap += 1,
            },
            TraceEvent::SwitchDecision {
                spatial,
                temporal,
                switch,
                ..
            } => cur.last_switch = Some((spatial, temporal, switch)),
            TraceEvent::SessionRetain { .. } => cur.session_retains += 1,
            TraceEvent::SessionDrop { .. } => cur.session_drops += 1,
            TraceEvent::SessionReuseHit { tokens, .. } => {
                cur.reuse_hits += 1;
                cur.reuse_hit_tokens += tokens;
            }
            TraceEvent::SessionReuseMiss { .. } => cur.reuse_misses += 1,
            TraceEvent::StageBusy { .. } | TraceEvent::StageIdle { .. } => {}
        }
    }
    if !first_event {
        rows.push(cur);
    }

    let mut out = String::with_capacity(64 * (rows.len() + 1));
    out.push_str(&format!(
        "{:>5}  {:<7}  {:>12}  {:>12}  detail\n",
        "phase", "kind", "t_start", "t_end"
    ));
    for (i, r) in rows.iter().enumerate() {
        let kind = r.phase.map(Phase::label).unwrap_or("-");
        out.push_str(&format!(
            "{:>5}  {:<7}  {:>12.6}  {:>12.6}  {}\n",
            i,
            kind,
            r.start,
            r.end,
            r.detail()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AdmitReason;

    #[test]
    fn empty_journal_is_header_only() {
        let t = decision_table(&FlightRecorder::disabled());
        assert_eq!(t.lines().count(), 1);
        assert!(t.contains("detail"));
    }

    #[test]
    fn phases_become_rows() {
        let mut r = FlightRecorder::with_capacity(8);
        r.record(
            0.0,
            TraceEvent::PrefillAdmit {
                request: 1,
                tokens: 100,
                reason: AdmitReason::FirstPrefill,
            },
        );
        r.record(
            0.1,
            TraceEvent::PrefillStop {
                reason: PrefillStopReason::Overflow,
                admitted: 1,
            },
        );
        r.record(
            0.2,
            TraceEvent::PhaseSwitch {
                from: Phase::Prefill,
                to: Phase::Decode,
            },
        );
        r.record(
            0.5,
            TraceEvent::StealWithhold { n: 2, target: 4 },
        );
        r.record(
            0.9,
            TraceEvent::SwitchDecision {
                spatial: 0.5,
                temporal: 0.75,
                batch: 8,
                est_longest: 30.0,
                est_phase_len: 20.0,
                switch: true,
            },
        );
        let t = decision_table(&r);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3, "{t}");
        assert!(lines[1].contains("prefill"));
        assert!(lines[1].contains("admitted 1 (100 tok) in 0 batches, stop: Overflow"));
        assert!(lines[2].contains("decode"));
        assert!(lines[2].contains("steal -2/+0"));
        assert!(lines[2].contains("0.500 vs 0.750 -> switch"));
    }

    #[test]
    fn session_events_show_up_in_their_phase_rows() {
        let mut r = FlightRecorder::with_capacity(8);
        r.record(
            0.0,
            TraceEvent::SessionReuseHit {
                request: 3,
                tokens: 200,
            },
        );
        r.record(0.1, TraceEvent::SessionReuseMiss { request: 4 });
        r.record(
            0.2,
            TraceEvent::PhaseSwitch {
                from: Phase::Prefill,
                to: Phase::Decode,
            },
        );
        r.record(
            0.5,
            TraceEvent::SessionRetain {
                request: 5,
                tokens: 300,
            },
        );
        r.record(
            0.6,
            TraceEvent::SessionDrop {
                request: 5,
                tokens: 300,
            },
        );
        let t = decision_table(&r);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3, "{t}");
        assert!(lines[1].contains("reuse 1hit (200 tok)/1miss"), "{t}");
        assert!(lines[2].contains("retain +1/-1"), "{t}");
    }
}
