//! `chrome://tracing` / Perfetto JSON export of a run.
//!
//! Layout: everything lives in pid 0. Track (tid) 0 is the **engine** —
//! each journal decision becomes an instant (`ph:"i"`) event. Track
//! `device + 1` is one GPU — each [`Timeline`] segment becomes a complete
//! (`ph:"X"`) event whose duration is the segment's busy interval.
//! Virtual seconds map to trace microseconds (the format's native unit).

use serde::{Serialize, Value};
use std::collections::BTreeMap;
use tdpipe_sim::Timeline;

use crate::event::{FlightRecorder, TimedEvent, TraceEvent};

/// Seconds → Chrome-trace microseconds.
const SECS_TO_US: f64 = 1e6;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn thread_name(tid: u64, name: &str) -> Value {
    obj(vec![
        ("name", Value::Str("thread_name".into())),
        ("ph", Value::Str("M".into())),
        ("pid", Value::UInt(0)),
        ("tid", Value::UInt(tid)),
        ("args", obj(vec![("name", Value::Str(name.into()))])),
    ])
}

/// The serde encoding of a struct variant is `{"VariantName": {fields}}`;
/// the Chrome `args` object wants just the fields.
fn event_args(event: &TraceEvent) -> Value {
    match event.to_value() {
        Value::Map(mut entries) if entries.len() == 1 => entries.remove(0).1,
        other => other,
    }
}

fn instant(e: &TimedEvent) -> Value {
    obj(vec![
        ("name", Value::Str(e.event.label().into())),
        ("ph", Value::Str("i".into())),
        ("s", Value::Str("t".into())),
        ("pid", Value::UInt(0)),
        ("tid", Value::UInt(0)),
        ("ts", Value::Float(e.t * SECS_TO_US)),
        ("args", event_args(&e.event)),
    ])
}

/// Export a run as Chrome-trace JSON.
///
/// Deterministic: the output is a pure function of the timeline and the
/// journal (insertion-ordered maps, stable per-track sorting via
/// `total_cmp`), so identical runs export byte-identical traces.
pub fn chrome_trace(timeline: &Timeline, journal: &FlightRecorder) -> String {
    let segs = timeline.segments();
    let mut events: Vec<Value> =
        Vec::with_capacity(segs.len() + journal.events().len() + timeline.num_devices() + 1);

    events.push(thread_name(0, "engine"));
    for d in 0..timeline.num_devices() as u64 {
        events.push(thread_name(d + 1, &format!("gpu{d}")));
    }

    // Engine track: journal order is already time order.
    for e in journal.events() {
        events.push(instant(e));
    }

    // Device tracks: one complete event per segment, sorted per device by
    // start time (stable, total order — NaN-free by Timeline's contract).
    let mut by_device: Vec<usize> = (0..segs.len()).collect();
    by_device.sort_by(|&a, &b| {
        segs[a]
            .device
            .cmp(&segs[b].device)
            .then(segs[a].start.total_cmp(&segs[b].start))
    });
    for &i in &by_device {
        let s = &segs[i];
        events.push(obj(vec![
            ("name", Value::Str(s.kind.label().into())),
            ("ph", Value::Str("X".into())),
            ("pid", Value::UInt(0)),
            ("tid", Value::UInt(s.device as u64 + 1)),
            ("ts", Value::Float(s.start * SECS_TO_US)),
            ("dur", Value::Float((s.end - s.start) * SECS_TO_US)),
            ("args", obj(vec![("tag", Value::UInt(s.tag))])),
        ]));
    }

    let doc = obj(vec![
        ("traceEvents", Value::Seq(events)),
        ("displayTimeUnit", Value::Str("ms".into())),
    ]);
    serde_json::to_string(&doc).unwrap_or_else(|_| String::from("{}"))
}

/// What [`validate_chrome_trace`] measured about a trace document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ChromeTraceCheck {
    /// Total events in `traceEvents` (including metadata).
    pub events: usize,
    /// Distinct tracks (tids) that carried at least one non-metadata event.
    pub tracks: usize,
    /// `ph:"X"` complete events (device segments).
    pub complete_events: usize,
    /// `ph:"i"` instant events (engine decisions).
    pub instant_events: usize,
}

fn lookup<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_u64(v: &Value) -> Option<u64> {
    match *v {
        Value::UInt(u) => Some(u),
        Value::Int(i) if i >= 0 => Some(i as u64),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match *v {
        Value::Float(f) => Some(f),
        Value::UInt(u) => Some(u as f64),
        Value::Int(i) => Some(i as f64),
        _ => None,
    }
}

/// Schema-check a Chrome-trace JSON document: it must parse, carry a
/// `traceEvents` array, and every non-metadata event needs a finite,
/// per-track monotone (non-decreasing) `ts`. This is the check
/// `scripts/ci.sh` runs against the CLI's `--trace-out` output.
pub fn validate_chrome_trace(json: &str) -> Result<ChromeTraceCheck, String> {
    let doc: Value = serde_json::from_str(json).map_err(|e| format!("invalid JSON: {e}"))?;
    let Value::Map(top) = doc else {
        return Err("top level is not an object".into());
    };
    let Some(Value::Seq(events)) = lookup(&top, "traceEvents") else {
        return Err("missing traceEvents array".into());
    };

    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    let mut complete = 0usize;
    let mut instants = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let Value::Map(fields) = ev else {
            return Err(format!("event {i} is not an object"));
        };
        let ph = match lookup(fields, "ph") {
            Some(Value::Str(s)) => s.as_str(),
            _ => return Err(format!("event {i} has no ph")),
        };
        if ph == "M" {
            continue;
        }
        let tid = lookup(fields, "tid")
            .and_then(as_u64)
            .ok_or_else(|| format!("event {i} has no tid"))?;
        let ts = lookup(fields, "ts")
            .and_then(as_f64)
            .ok_or_else(|| format!("event {i} has no ts"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {i} has non-finite or negative ts {ts}"));
        }
        if let Some(&prev) = last_ts.get(&tid) {
            if ts < prev {
                return Err(format!(
                    "event {i}: ts {ts} goes backwards on track {tid} (prev {prev})"
                ));
            }
        }
        last_ts.insert(tid, ts);
        match ph {
            "X" => {
                let dur = lookup(fields, "dur")
                    .and_then(as_f64)
                    .ok_or_else(|| format!("event {i}: complete event has no dur"))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {i} has invalid dur {dur}"));
                }
                complete += 1;
            }
            "i" => instants += 1,
            other => return Err(format!("event {i} has unsupported ph {other:?}")),
        }
    }
    Ok(ChromeTraceCheck {
        events: events.len(),
        tracks: last_ts.len(),
        complete_events: complete,
        instant_events: instants,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{PrefillStopReason, TraceEvent};
    use tdpipe_sim::SegmentKind;

    fn sample() -> (Timeline, FlightRecorder) {
        let mut tl = Timeline::new(true);
        tl.record(0, 0.0, 1.0, SegmentKind::Prefill, 1);
        tl.record(1, 0.25, 1.25, SegmentKind::Prefill, 1);
        tl.record(0, 1.5, 2.5, SegmentKind::Decode, 2);
        let mut r = FlightRecorder::with_capacity(2);
        r.record(
            0.0,
            TraceEvent::PrefillStop {
                reason: PrefillStopReason::Budget,
                admitted: 3,
            },
        );
        r.record(
            1.5,
            TraceEvent::SwitchDecision {
                spatial: 0.8,
                temporal: 0.9,
                batch: 12,
                est_longest: 40.0,
                est_phase_len: 25.0,
                switch: true,
            },
        );
        (tl, r)
    }

    #[test]
    fn export_passes_validation() {
        let (tl, r) = sample();
        let json = chrome_trace(&tl, &r);
        let check = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(check.complete_events, tl.segments().len());
        assert_eq!(check.instant_events, r.events().len());
        // engine track + two device tracks
        assert_eq!(check.tracks, 3);
    }

    #[test]
    fn export_is_deterministic() {
        let (tl, r) = sample();
        assert_eq!(chrome_trace(&tl, &r), chrome_trace(&tl, &r));
    }

    #[test]
    fn validator_rejects_backwards_ts() {
        let bad = r#"{"traceEvents":[
            {"ph":"i","s":"t","pid":0,"tid":0,"ts":5.0,"name":"a","args":{}},
            {"ph":"i","s":"t","pid":0,"tid":0,"ts":4.0,"name":"b","args":{}}
        ]}"#;
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn validator_rejects_non_json() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{}").is_err());
    }
}
