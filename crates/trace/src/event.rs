//! The structured event journal: what the scheduler decided, and when.
//!
//! Every event is stamped with the engine's *virtual* clock (seconds from
//! t = 0), never a wall clock, so a journal is a pure function of the
//! workload + configuration and byte-identical across identical runs.

use serde::{Deserialize, Serialize};
use tdpipe_kvcache::Phase;
use tdpipe_sim::{SegmentKind, Timeline};

/// Why a request was admitted into a prefill batch (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmitReason {
    /// The request's first prefill: a fresh prompt from the pending queue.
    FirstPrefill,
    /// Re-prefill of a previously evicted request (recompute mode).
    Recompute,
    /// Swap-in of a previously swapped-out request's KV blocks.
    SwapIn,
}

/// Why prefill-batch assembly halted (§3.3 Algorithm 1 stop conditions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrefillStopReason {
    /// The greedy planner's futurePoints simulation predicted KV overflow
    /// if one more prompt were admitted — the headline AI-based stop.
    Overflow,
    /// Not enough free KV blocks (after the watermark) to place the next
    /// prompt right now.
    Memory,
    /// The next pending request has not arrived yet at the batch's launch
    /// time.
    Arrival,
    /// Admitting the next prompt would exceed the per-batch prefill token
    /// budget.
    Budget,
    /// The pending queue is empty — nothing left to prefill.
    Exhausted,
}

/// How a decode-phase eviction reclaimed KV blocks (§3.2 memory pressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictMode {
    /// Blocks freed; the request will re-prefill from scratch later.
    Recompute,
    /// Blocks copied out to host memory; swapped back in later.
    Swap,
}

/// One scheduler decision, without its timestamp (see [`TimedEvent`]).
///
/// Serialized externally-tagged (`{"PrefillStop": {...}}`), which is what
/// both the journal byte-comparison and the Chrome-trace `args` use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A request entered the current prefill batch.
    PrefillAdmit {
        /// Request id.
        request: u64,
        /// Tokens admitted: prompt (+ recomputed) tokens for a prefill,
        /// resident tokens for a swap-in.
        tokens: u64,
        /// Why this admission happened.
        reason: AdmitReason,
    },
    /// Prefill-batch assembly halted. Emitted once per launched batch and
    /// once at phase end; the *last* one in a phase is why the phase ended.
    PrefillStop {
        /// Stop condition that fired.
        reason: PrefillStopReason,
        /// Requests admitted into the phase so far (cumulative).
        admitted: u64,
    },
    /// A packed prefill batch was handed to the executor. Recorded at the
    /// packing clock; `ready` is the (later) instant the executor can
    /// actually start it, after the launch-overhead serialisation. The
    /// `PrefillAdmit` events for the batch's members follow immediately,
    /// so span reconstruction can associate each admit with its batch.
    PrefillLaunch {
        /// Launch sequence number within the run (1-based).
        seq: u64,
        /// Requests in the batch.
        batch: usize,
        /// Prefill tokens the batch computes.
        tokens: u64,
        /// Virtual time the executor can start the batch.
        ready: f64,
    },
    /// A prefill batch completed on the last stage; one event per member,
    /// stamped at the batch's completion time. The *first* `PrefillDone`
    /// a request sees is its first token; a later one closes a recompute
    /// episode after an eviction.
    PrefillDone {
        /// Request id.
        request: u64,
    },
    /// A request produced its final token and left the system. Carries
    /// the lifecycle anchor timestamps so a journal alone reconstructs
    /// every latency component without the engine's request pool.
    RequestFinish {
        /// Request id.
        request: u64,
        /// Time the request entered the system.
        arrival: f64,
        /// Time its first output token was produced.
        first_token: f64,
    },
    /// Nothing resident and nothing arrived: the engine fast-forwarded
    /// its clock to the next arrival. The window [t, until] is declared
    /// arrival starvation for every device.
    ArrivalWait {
        /// The next arrival the engine slept until.
        until: f64,
    },
    /// The §3.4 stealer withheld requests from a returning decode batch.
    StealWithhold {
        /// Requests withheld (moved to the resident pool).
        n: usize,
        /// Sliding-window per-batch size target.
        target: usize,
    },
    /// The §3.4 stealer topped a returning decode batch up from the pool.
    StealSupplement {
        /// Requests added from the resident pool.
        n: usize,
        /// Sliding-window per-batch size target.
        target: usize,
    },
    /// A resident request was evicted to relieve KV pressure.
    Evict {
        /// Reclamation mode.
        mode: EvictMode,
        /// Evicted request id.
        victim: u64,
    },
    /// One §3.5 spatial-vs-temporal comparison at a decode step.
    SwitchDecision {
        /// Spatial intensity (current decode batch utilisation proxy).
        spatial: f64,
        /// Temporal intensity (estimated post-switch utilisation).
        temporal: f64,
        /// Decode batch size the comparison saw.
        batch: usize,
        /// Estimated longest remaining decode length (steps).
        est_longest: f64,
        /// Estimated decode-phase length after a switch (steps).
        est_phase_len: f64,
        /// Whether the comparator ordered a decode→prefill switch.
        switch: bool,
    },
    /// The engine crossed a phase boundary.
    PhaseSwitch {
        /// Phase being left.
        from: Phase,
        /// Phase being entered.
        to: Phase,
    },
    /// A finished session turn's KV was retained for its successor turn
    /// instead of being freed (session-affine reuse).
    SessionRetain {
        /// The *successor* request the blocks are reserved for.
        request: u64,
        /// Tokens held resident for it.
        tokens: u64,
    },
    /// A retained session prefix was reclaimed (budget or memory
    /// pressure) before its successor arrived; the successor will pay a
    /// full prefill.
    SessionDrop {
        /// The successor request that lost its prefix.
        request: u64,
        /// Tokens given back to the live pool.
        tokens: u64,
    },
    /// A resumed session turn was admitted with its retained prefix still
    /// resident: only the fresh suffix was prefilled.
    SessionReuseHit {
        /// Admitted request id.
        request: u64,
        /// Prefix tokens reused (never re-prefilled).
        tokens: u64,
    },
    /// A resumed session turn was admitted with no retained prefix (never
    /// retained, or dropped under pressure): full prefill.
    SessionReuseMiss {
        /// Admitted request id.
        request: u64,
    },
    /// A device executed work for `dur` seconds (derived from the
    /// [`Timeline`] when segment recording is on).
    StageBusy {
        /// Device (pipeline stage) index.
        device: u32,
        /// Activity class of the segment.
        kind: SegmentKind,
        /// Busy seconds.
        dur: f64,
    },
    /// A device sat idle for `dur` seconds between two busy segments.
    StageIdle {
        /// Device (pipeline stage) index.
        device: u32,
        /// Idle seconds.
        dur: f64,
    },
}

impl TraceEvent {
    /// Short kind label (Chrome-trace event names, decision-table rows).
    pub const fn label(&self) -> &'static str {
        match self {
            TraceEvent::PrefillAdmit { .. } => "prefill_admit",
            TraceEvent::PrefillStop { .. } => "prefill_stop",
            TraceEvent::PrefillLaunch { .. } => "prefill_launch",
            TraceEvent::PrefillDone { .. } => "prefill_done",
            TraceEvent::RequestFinish { .. } => "request_finish",
            TraceEvent::ArrivalWait { .. } => "arrival_wait",
            TraceEvent::StealWithhold { .. } => "steal_withhold",
            TraceEvent::StealSupplement { .. } => "steal_supplement",
            TraceEvent::Evict { .. } => "evict",
            TraceEvent::SwitchDecision { .. } => "switch_decision",
            TraceEvent::PhaseSwitch { .. } => "phase_switch",
            TraceEvent::SessionRetain { .. } => "session_retain",
            TraceEvent::SessionDrop { .. } => "session_drop",
            TraceEvent::SessionReuseHit { .. } => "session_reuse_hit",
            TraceEvent::SessionReuseMiss { .. } => "session_reuse_miss",
            TraceEvent::StageBusy { .. } => "stage_busy",
            TraceEvent::StageIdle { .. } => "stage_idle",
        }
    }
}

/// An event plus the virtual time it happened at.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Virtual time in seconds.
    pub t: f64,
    /// The decision.
    pub event: TraceEvent,
}

/// The flight recorder: an append-only journal of [`TimedEvent`]s.
///
/// Constructed either [`disabled`](FlightRecorder::disabled) (every
/// `record` is a single-branch no-op — the default, so figure artifacts
/// stay bit-identical) or [`with_capacity`](FlightRecorder::with_capacity)
/// (pre-sized, allocation-light). Engine decisions land in `events`
/// (time-ordered by construction); device activity derived from a
/// [`Timeline`] lands in `stage_events` (time-ordered per device).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlightRecorder {
    enabled: bool,
    events: Vec<TimedEvent>,
    stage_events: Vec<TimedEvent>,
}

impl FlightRecorder {
    /// A recorder that drops everything (the default).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled recorder with room for `cap` engine events.
    pub fn with_capacity(cap: usize) -> Self {
        FlightRecorder {
            enabled: true,
            events: Vec::with_capacity(cap),
            stage_events: Vec::new(),
        }
    }

    /// Whether events are being kept.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append an engine event at virtual time `t`. No-op when disabled.
    /// Times must be non-decreasing (enforced in debug builds).
    #[inline]
    pub fn record(&mut self, t: f64, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        debug_assert!(
            self.events.last().is_none_or(|e| t >= e.t),
            "journal events must be time-ordered"
        );
        self.events.push(TimedEvent { t, event });
    }

    /// Engine decision events in time order.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Device activity events (time-ordered within each device).
    pub fn stage_events(&self) -> &[TimedEvent] {
        &self.stage_events
    }

    /// Total recorded events (engine + stage).
    pub fn len(&self) -> usize {
        self.events.len() + self.stage_events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Derive `StageBusy`/`StageIdle` events from a [`Timeline`].
    ///
    /// Segments are walked per device in recording order (the simulator
    /// records each device's work in start order); a positive gap between
    /// consecutive segments of the same device becomes a `StageIdle` at
    /// the gap's start. Requires the timeline to have been built with
    /// segment recording on — with it off this records nothing. No-op
    /// when the recorder is disabled.
    pub fn append_stage_events(&mut self, timeline: &Timeline) {
        self.append_stage_events_impl(timeline, None);
    }

    /// [`append_stage_events`](Self::append_stage_events), additionally
    /// emitting the *boundary* idleness each device sees: a leading
    /// `StageIdle` from t = 0 to its first segment (pipeline warm-up) and
    /// a trailing one from its last segment to `run_end` (drain). With
    /// boundary events included, the in-order sum of a device's idle
    /// durations accounts for `run_end` minus its busy seconds — the
    /// closed idle total the bubble ledger attributes cause-by-cause.
    pub fn append_stage_events_bounded(&mut self, timeline: &Timeline, run_end: f64) {
        self.append_stage_events_impl(timeline, Some(run_end));
    }

    fn append_stage_events_impl(&mut self, timeline: &Timeline, run_end: Option<f64>) {
        if !self.enabled {
            return;
        }
        let segs = timeline.segments();
        self.stage_events.reserve(segs.len() * 2);
        for device in 0..timeline.num_devices() as u32 {
            let mut last_end: Option<f64> = if run_end.is_some() {
                // Bounded mode: the run starts at t = 0, so a device's
                // pre-first-segment wait is warm-up idleness.
                Some(0.0)
            } else {
                None
            };
            for s in segs.iter().filter(|s| s.device == device) {
                if let Some(prev) = last_end {
                    let gap = s.start - prev;
                    if gap > 0.0 {
                        self.stage_events.push(TimedEvent {
                            t: prev,
                            event: TraceEvent::StageIdle { device, dur: gap },
                        });
                    }
                }
                self.stage_events.push(TimedEvent {
                    t: s.start,
                    event: TraceEvent::StageBusy {
                        device,
                        kind: s.kind,
                        dur: s.end - s.start,
                    },
                });
                last_end = Some(last_end.unwrap_or(s.end).max(s.end));
            }
            if let (Some(end), Some(prev)) = (run_end, last_end) {
                let gap = end - prev;
                if gap > 0.0 {
                    self.stage_events.push(TimedEvent {
                        t: prev,
                        event: TraceEvent::StageIdle { device, dur: gap },
                    });
                }
            }
        }
    }

    /// Serialize the whole journal as JSON — the byte-comparison surface
    /// for the determinism test and the on-disk journal format.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| String::from("{}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_drops_everything() {
        let mut r = FlightRecorder::disabled();
        r.record(
            0.0,
            TraceEvent::PhaseSwitch {
                from: Phase::Prefill,
                to: Phase::Decode,
            },
        );
        let mut tl = Timeline::new(true);
        tl.record(0, 0.0, 1.0, SegmentKind::Prefill, 0);
        r.append_stage_events(&tl);
        assert!(r.is_empty());
        assert!(!r.is_enabled());
    }

    #[test]
    fn records_in_order_and_serializes() {
        let mut r = FlightRecorder::with_capacity(4);
        r.record(
            0.5,
            TraceEvent::PrefillAdmit {
                request: 7,
                tokens: 128,
                reason: AdmitReason::FirstPrefill,
            },
        );
        r.record(
            1.0,
            TraceEvent::PrefillStop {
                reason: PrefillStopReason::Budget,
                admitted: 1,
            },
        );
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.events()[0].event.label(), "prefill_admit");
        let json = r.to_json();
        assert!(json.contains("PrefillStop"));
        assert!(json.contains("Budget"));
        // Round-trips through the vendored serde.
        let back: FlightRecorder = serde_json::from_str(&json).expect("journal parses back");
        assert_eq!(back.events().len(), 2);
    }

    #[test]
    fn stage_events_include_idle_gaps() {
        let mut tl = Timeline::new(true);
        tl.record(0, 0.0, 1.0, SegmentKind::Prefill, 1);
        tl.record(0, 2.0, 3.0, SegmentKind::Decode, 2);
        tl.record(1, 0.5, 1.5, SegmentKind::Decode, 1);
        let mut r = FlightRecorder::with_capacity(0);
        r.append_stage_events(&tl);
        // Device 0: busy, idle (gap 1.0), busy. Device 1: one busy.
        assert_eq!(r.stage_events().len(), 4);
        let idle: Vec<_> = r
            .stage_events()
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::StageIdle { .. }))
            .collect();
        assert_eq!(idle.len(), 1);
        match idle[0].event {
            TraceEvent::StageIdle { device, dur } => {
                assert_eq!(device, 0);
                assert!((dur - 1.0).abs() < 1e-12);
                assert!((idle[0].t - 1.0).abs() < 1e-12);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn bounded_stage_events_cover_warmup_and_drain() {
        let mut tl = Timeline::new(true);
        tl.record(0, 0.0, 1.0, SegmentKind::Prefill, 1);
        tl.record(1, 0.5, 1.5, SegmentKind::Prefill, 1);
        let mut r = FlightRecorder::with_capacity(0);
        r.append_stage_events_bounded(&tl, 2.0);
        // Device 0: busy [0,1], drain idle [1,2].
        // Device 1: warm-up idle [0,0.5], busy [.5,1.5], drain [1.5,2].
        let idles: Vec<(u32, f64, f64)> = r
            .stage_events()
            .iter()
            .filter_map(|e| match e.event {
                TraceEvent::StageIdle { device, dur } => Some((device, e.t, dur)),
                _ => None,
            })
            .collect();
        assert_eq!(idles, vec![(0, 1.0, 1.0), (1, 0.0, 0.5), (1, 1.5, 0.5)]);
        // Per device, busy + idle tile [0, run_end] exactly.
        for device in 0..2u32 {
            let covered: f64 = r
                .stage_events()
                .iter()
                .filter_map(|e| match e.event {
                    TraceEvent::StageBusy { device: d, dur, .. } if d == device => Some(dur),
                    TraceEvent::StageIdle { device: d, dur } if d == device => Some(dur),
                    _ => None,
                })
                .sum();
            assert_eq!(covered, 2.0, "device {device}");
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_events_panic_in_debug() {
        let mut r = FlightRecorder::with_capacity(2);
        r.record(
            2.0,
            TraceEvent::PrefillStop {
                reason: PrefillStopReason::Exhausted,
                admitted: 0,
            },
        );
        r.record(
            1.0,
            TraceEvent::PrefillStop {
                reason: PrefillStopReason::Exhausted,
                admitted: 0,
            },
        );
    }
}
