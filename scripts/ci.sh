#!/usr/bin/env bash
# The one-command gate: everything a change must pass before merging.
#
#   1. invariant lint pass (crates/analyzer vs the committed baseline —
#      the analyzer scans its own sources via the `tooling` rule set)
#      plus both bounded protocol model checkers (`--check-protocols`:
#      cluster↔worker supervision and session-KV retention, each proven
#      non-vacuous by seeded mutations)
#   2. release build of the whole workspace
#   3. full test suite (unit + integration, all crates — includes the
#      bounded protocol model checker)
#   4. bit-identical smoke diff against the committed Fig. 11 snapshot
#   5. flight-recorder smoke: a traced CLI run whose Chrome-trace export
#      must pass the schema validator
#   6. metrics-regression gate: a metered 200-request run diffed against
#      the committed metrics.baseline.json (nonzero exit = a gated
#      headline metric drifted beyond its per-metric tolerance; refresh
#      the baseline deliberately when a change is intentional:
#        target/release/tdpipe-cli run --scheduler td --requests 200 \
#          --metrics-out metrics.baseline.json)
#   7. online-sessions smoke: a short Poisson open-loop run and a
#      closed-loop session run (session-KV reuse on) through the CLI;
#      both Chrome-trace exports must pass the schema validator, and two
#      identical metered session runs must metrics-diff clean against
#      each other (the online path is deterministic and the diff tool
#      understands the session counters).
#   8. fleet smoke: a 2-replica heterogeneous (l20+a100) routed run
#      through the CLI with per-replica Chrome-trace exports (both must
#      pass the schema validator), and two identical metered fleet runs
#      that must metrics-diff clean against each other (the fleet router,
#      parallel replica execution, and replica-labelled metrics merge are
#      all deterministic).
#   9. perf-trajectory smoke: a quick (200-request, 1-rep, no scale
#      cells) perf_trajectory run into a temp file, schema-validated with
#      `perf_trajectory --check`, plus the same check against the
#      committed BENCH_hotpath.json. Catches harness bitrot and
#      hand-edited/truncated trajectory files; it does NOT gate on times
#      (CI machines are too noisy — regenerate BENCH_hotpath.json
#      deliberately with `cargo run --release --bin perf_trajectory`).
#  10. span/bubble attribution smoke: a traced run exporting its raw
#      journal (`--journal-out`), then `span-report` and `bubble-report`
#      over it (plus a 2-replica fleet journal set merged under replica
#      labels); every emitted report must pass its own `--check` schema
#      validator, which re-verifies the exact accounting identities
#      (span components refold to TTFT/latency, attributed bubble
#      seconds refold bit-exactly to total StageIdle per device) and
#      exits 1 on any malformed or tampered report.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n\033[1m== %s ==\033[0m\n' "$1"; }

step "analyze (invariant lint pass + protocol model checkers)"
scripts/analyze.sh

step "build (release)"
# --workspace: a root-only build does not (re)link the bench-crate
# binaries, and step 7 runs one.
cargo build --release --workspace

step "tests (workspace)"
cargo test --release --workspace -q

step "smoke (bit-identical fig11 snapshot)"
scripts/smoke.sh

step "trace export smoke (schema-valid Chrome trace)"
trace_tmp="$(mktemp -d)"
trap 'rm -rf "$trace_tmp"' EXIT
target/release/tdpipe-cli run --scheduler td --requests 200 \
  --trace-out "$trace_tmp/run.trace.json"
target/release/tdpipe-cli validate-trace --file "$trace_tmp/run.trace.json"

step "metrics-regression gate (vs committed baseline)"
target/release/tdpipe-cli run --scheduler td --requests 200 \
  --metrics-out "$trace_tmp/run.metrics.json"
target/release/tdpipe-cli metrics-diff \
  --baseline metrics.baseline.json --current "$trace_tmp/run.metrics.json"

step "online-sessions smoke (poisson arrivals + session-KV reuse)"
target/release/tdpipe-cli run --scheduler td --requests 120 \
  --arrival poisson --rate 24 \
  --trace-out "$trace_tmp/online.trace.json"
target/release/tdpipe-cli validate-trace --file "$trace_tmp/online.trace.json"
target/release/tdpipe-cli run --scheduler td --sessions 48 \
  --arrival poisson --rate 8 --reuse on \
  --trace-out "$trace_tmp/sessions.trace.json"
target/release/tdpipe-cli validate-trace --file "$trace_tmp/sessions.trace.json"
target/release/tdpipe-cli run --scheduler td --sessions 48 \
  --arrival poisson --rate 8 --reuse on \
  --metrics-out "$trace_tmp/sessions.a.metrics.json"
target/release/tdpipe-cli run --scheduler td --sessions 48 \
  --arrival poisson --rate 8 --reuse on \
  --metrics-out "$trace_tmp/sessions.b.metrics.json"
target/release/tdpipe-cli metrics-diff \
  --baseline "$trace_tmp/sessions.a.metrics.json" \
  --current "$trace_tmp/sessions.b.metrics.json"

step "fleet smoke (heterogeneous routed run, traced + deterministic metrics)"
target/release/tdpipe-cli run --requests 120 \
  --arrival poisson --rate 16 \
  --pool l20:1,a100:1 --router kv \
  --trace-out "$trace_tmp/fleet.trace.json"
target/release/tdpipe-cli validate-trace \
  --file "$trace_tmp/fleet.trace.json.r0,$trace_tmp/fleet.trace.json.r1"
target/release/tdpipe-cli run --requests 120 \
  --arrival poisson --rate 16 \
  --pool l20:1,a100:1 --router kv \
  --metrics-out "$trace_tmp/fleet.a.metrics.json"
target/release/tdpipe-cli run --requests 120 \
  --arrival poisson --rate 16 \
  --pool l20:1,a100:1 --router kv \
  --metrics-out "$trace_tmp/fleet.b.metrics.json"
target/release/tdpipe-cli metrics-diff \
  --baseline "$trace_tmp/fleet.a.metrics.json" \
  --current "$trace_tmp/fleet.b.metrics.json"

step "perf-trajectory smoke (quick run + schema check)"
TDPIPE_REQUESTS=200 TDPIPE_PERF_REPS=1 TDPIPE_PERF_SCALE=0 \
  TDPIPE_BENCH_OUT="$trace_tmp/hotpath.json" \
  target/release/perf_trajectory
target/release/perf_trajectory --check "$trace_tmp/hotpath.json"
target/release/perf_trajectory --check BENCH_hotpath.json

step "span/bubble attribution smoke (journal -> reports -> validators)"
target/release/tdpipe-cli run --scheduler td --requests 200 \
  --arrival poisson --rate 24 \
  --journal-out "$trace_tmp/run.journal.json"
target/release/tdpipe-cli span-report \
  --journal "$trace_tmp/run.journal.json" \
  --out "$trace_tmp/run.spans.json" \
  --chrome-out "$trace_tmp/run.spans.trace.json" > /dev/null
target/release/tdpipe-cli span-report --check "$trace_tmp/run.spans.json"
target/release/tdpipe-cli bubble-report \
  --journal "$trace_tmp/run.journal.json" \
  --out "$trace_tmp/run.bubbles.json" > /dev/null
target/release/tdpipe-cli bubble-report --check "$trace_tmp/run.bubbles.json"
target/release/tdpipe-cli validate-trace --file "$trace_tmp/run.spans.trace.json"
# Fleet: per-replica journals merged onto one labelled timeline.
target/release/tdpipe-cli run --requests 120 \
  --arrival poisson --rate 16 \
  --pool l20:1,a100:1 --router kv \
  --journal-out "$trace_tmp/fleet.journal.json"
target/release/tdpipe-cli trace-summary \
  --journal "$trace_tmp/fleet.journal.json.r0,$trace_tmp/fleet.journal.json.r1" \
  --labels l20,a100 > /dev/null
target/release/tdpipe-cli span-report \
  --journal "$trace_tmp/fleet.journal.json.r0,$trace_tmp/fleet.journal.json.r1" \
  --labels l20,a100 \
  --out "$trace_tmp/fleet.spans.json" > /dev/null
target/release/tdpipe-cli span-report --check "$trace_tmp/fleet.spans.json"
target/release/tdpipe-cli bubble-report \
  --journal "$trace_tmp/fleet.journal.json.r0,$trace_tmp/fleet.journal.json.r1" \
  --labels l20,a100 \
  --out "$trace_tmp/fleet.bubbles.json" > /dev/null
target/release/tdpipe-cli bubble-report --check "$trace_tmp/fleet.bubbles.json"

printf '\nci OK: build + tests + smoke + trace export + metrics gate + sessions smoke + fleet smoke + perf smoke + span/bubble smoke all green\n'
