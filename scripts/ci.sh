#!/usr/bin/env bash
# The one-command gate: everything a change must pass before merging.
#
#   1. invariant lint pass (crates/analyzer vs the committed baseline)
#   2. release build of the whole workspace
#   3. full test suite (unit + integration, all crates — includes the
#      bounded protocol model checker)
#   4. bit-identical smoke diff against the committed Fig. 11 snapshot
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n\033[1m== %s ==\033[0m\n' "$1"; }

step "analyze (invariant lint pass)"
scripts/analyze.sh

step "build (release)"
cargo build --release

step "tests (workspace)"
cargo test --release --workspace -q

step "smoke (bit-identical fig11 snapshot)"
scripts/smoke.sh

printf '\nci OK: build + tests + smoke all green\n'
