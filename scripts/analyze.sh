#!/usr/bin/env bash
# Run the in-repo invariant lint pass (crates/analyzer) against the
# committed ratchet baseline.
#
#   scripts/analyze.sh                    # human-readable, fails on new findings
#   scripts/analyze.sh --json             # machine-readable report
#   scripts/analyze.sh --update-baseline  # re-record analyzer.baseline.json
#
# Extra arguments are passed through to the analyzer binary
# (see `cargo run -p analyzer -- --help`).
set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo run --quiet --release -p analyzer -- --root . "$@"
