#!/usr/bin/env bash
# Run the in-repo invariant lint pass (crates/analyzer) against the
# committed ratchet baseline, plus the bounded protocol model checkers
# (cluster↔worker supervision and session-KV retention, with their
# non-vacuity mutations).
#
#   scripts/analyze.sh                    # human-readable, fails on new findings
#   scripts/analyze.sh --json             # machine-readable report
#   scripts/analyze.sh --update-baseline  # re-record analyzer.baseline.json
#
# Extra arguments are passed through to the analyzer binary's lint
# invocation (see `cargo run -p analyzer -- --help`).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --quiet --release -p analyzer -- --check-protocols -q
exec cargo run --quiet --release -p analyzer -- --root . "$@"
