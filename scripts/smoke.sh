#!/usr/bin/env bash
# Smoke test: build, run the test suite, then regenerate Figure 11 at a
# reduced request count and diff it byte-for-byte against the committed
# snapshot. Any scheduling change that alters simulated results — however
# slightly — fails the diff; pure performance work passes.
#
# Usage: scripts/smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
cargo build --release

echo "== tests (tier 1) =="
cargo test --release -q

echo "== fig11 @ 200 requests vs committed snapshot =="
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
TDPIPE_RESULTS_DIR="$out" TDPIPE_REQUESTS=200 \
    cargo run --release -p tdpipe-bench --bin fig11_overall >/dev/null
diff -u results/smoke/fig11_overall_200.json "$out/fig11_overall.json"
echo "smoke OK: results are bit-identical to the committed snapshot"
