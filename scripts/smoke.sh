#!/usr/bin/env bash
# Smoke test: regenerate Figure 11 at a reduced request count and diff it
# byte-for-byte against the committed snapshot. Any scheduling change that
# alters simulated results — however slightly — fails the diff; pure
# performance work passes.
#
# Exits non-zero with a readable summary of what drifted. Build and test
# are assumed done (scripts/ci.sh chains them); pass --build to run them
# here too, preserving the old standalone behaviour.
#
# Usage: scripts/smoke.sh [--build]
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--build" ]]; then
    echo "== build =="
    cargo build --release
    echo "== tests (tier 1) =="
    cargo test --release -q
fi

echo "== fig11 @ 200 requests vs committed snapshot =="
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
TDPIPE_RESULTS_DIR="$out" TDPIPE_REQUESTS=200 \
    cargo run --release -p tdpipe-bench --bin fig11_overall >/dev/null

golden="results/smoke/fig11_overall_200.json"
fresh="$out/fig11_overall.json"

if [[ ! -f "$fresh" ]]; then
    echo "smoke FAILED: fig11_overall produced no output at $fresh" >&2
    exit 1
fi

if diff -u "$golden" "$fresh" >"$out/diff.txt" 2>&1; then
    echo "smoke OK: results are bit-identical to the committed snapshot"
    exit 0
fi

changed=$(grep -c '^[-+][^-+]' "$out/diff.txt" || true)
echo "smoke FAILED: fig11 output drifted from the committed snapshot" >&2
echo "  golden:  $golden" >&2
echo "  fresh:   $fresh (deleted on exit)" >&2
echo "  changed lines: $changed" >&2
echo "  first differences:" >&2
grep '^[-+][^-+]' "$out/diff.txt" | head -20 | sed 's/^/    /' >&2
echo "If the drift is intentional (a scheduling change), regenerate the" >&2
echo "snapshot and commit it:" >&2
echo "  TDPIPE_RESULTS_DIR=results/smoke TDPIPE_REQUESTS=200 \\" >&2
echo "      cargo run --release -p tdpipe-bench --bin fig11_overall && \\" >&2
echo "      mv results/smoke/fig11_overall.json $golden" >&2
exit 1
